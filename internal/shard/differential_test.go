package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"udi/internal/answer"
	"udi/internal/core"
	"udi/internal/schema"
	"udi/internal/sqlparse"
)

// The differential harness: a sharded System at every supported shard
// count must answer every query bit-identically to the single-core
// oracle, through arbitrary interleavings of feedback, source additions
// and removals. "Bit-identically" is literal — probabilities are compared
// with ==, not a tolerance — because the merge revisits IEEE disjunction
// factors in the oracle's order (see MergeResultSets).

var diffApproaches = []core.Approach{
	core.UDI, core.SourceOnly, core.TopMapping, core.Consolidated,
	core.KeywordNaive, core.KeywordStruct,
}

// randomShardCorpus mirrors the core package's property-test corpus
// generator: a small vocabulary with plural variants and random
// column/value assignments.
func randomShardCorpus(rng *rand.Rand) *schema.Corpus {
	bases := []string{"alpha", "bravo", "carrot", "delta", "echo", "forest"}
	nBases := 2 + rng.Intn(len(bases)-1)
	nSources := 4 + rng.Intn(6)
	var sources []*schema.Source
	for i := 0; i < nSources; i++ {
		sources = append(sources, randomSource(rng, fmt.Sprintf("s%02d", i), bases[:nBases]))
	}
	c, err := schema.NewCorpus("random", sources)
	if err != nil {
		panic(err)
	}
	return c
}

func randomSource(rng *rand.Rand, name string, bases []string) *schema.Source {
	var attrs []string
	used := map[string]bool{}
	for _, b := range bases {
		if rng.Float64() < 0.6 {
			v := b
			if rng.Intn(2) == 1 {
				v += "s"
			}
			if !used[v] {
				used[v] = true
				attrs = append(attrs, v)
			}
		}
	}
	if len(attrs) == 0 {
		attrs = []string{bases[0]}
	}
	nRows := 1 + rng.Intn(6)
	rows := make([][]string, nRows)
	for r := range rows {
		row := make([]string, len(attrs))
		for c := range row {
			row[c] = fmt.Sprintf("v%d", rng.Intn(8))
		}
		rows[r] = row
	}
	return schema.MustNewSource(name, attrs, rows)
}

// trialQueries builds a few random queries over the oracle's current
// frequent attributes.
func trialQueries(rng *rand.Rand, corpus *schema.Corpus) []*sqlparse.Query {
	attrs := corpus.FrequentAttrs(0.10)
	if len(attrs) == 0 {
		return nil
	}
	var qs []*sqlparse.Query
	for i := 0; i < 3; i++ {
		sel := attrs[rng.Intn(len(attrs))]
		q := "SELECT " + sel + " FROM t"
		switch rng.Intn(3) {
		case 1:
			q += fmt.Sprintf(" WHERE %s = 'v%d'", attrs[rng.Intn(len(attrs))], rng.Intn(8))
		case 2:
			q += fmt.Sprintf(" WHERE %s != 'v%d'", attrs[rng.Intn(len(attrs))], rng.Intn(8))
		}
		qs = append(qs, sqlparse.MustParse(q))
	}
	return qs
}

// compareSystems runs the full battery: schema state, every approach on
// every query, and canonicalized explain provenance.
func compareSystems(t *testing.T, tag string, oracle *core.System, sh *System, qs []*sqlparse.Query) {
	t.Helper()
	ctx := context.Background()
	sn := oracle.Snapshot()
	v := sh.View()

	if got, want := v.NumSources(), len(sn.Corpus.Sources); got != want {
		t.Fatalf("%s: sharded serves %d sources, oracle %d", tag, got, want)
	}
	opm, spm := sn.Med.PMed, v.PMed()
	if len(opm.Schemas) != len(spm.Schemas) {
		t.Fatalf("%s: %d vs %d possible schemas", tag, len(spm.Schemas), len(opm.Schemas))
	}
	for i := range opm.Schemas {
		if opm.Schemas[i].Key() != spm.Schemas[i].Key() {
			t.Fatalf("%s: schema %d differs: %q vs %q", tag, i, spm.Schemas[i].Key(), opm.Schemas[i].Key())
		}
		if opm.Probs[i] != spm.Probs[i] {
			t.Fatalf("%s: schema %d prob %v vs oracle %v", tag, i, spm.Probs[i], opm.Probs[i])
		}
	}
	if sn.Target.Key() != v.Target().Key() {
		t.Fatalf("%s: consolidated target differs", tag)
	}

	for qi, q := range qs {
		for _, a := range diffApproaches {
			ors, oerr := sn.RunCtx(ctx, a, q)
			srs, serr := v.RunCtx(ctx, a, q)
			if (oerr != nil) != (serr != nil) {
				t.Fatalf("%s: q%d %s: oracle err %v, sharded err %v", tag, qi, a, oerr, serr)
			}
			if oerr != nil {
				continue
			}
			compareResultSets(t, fmt.Sprintf("%s: q%d %s", tag, qi, a), ors, srs)
		}
		// Provenance of the top UDI answer, compared canonically: the
		// engine's sort is unstable among fully tied contributions, so both
		// sides are re-sorted by a total key before comparison.
		ors, oerr := sn.RunCtx(ctx, core.UDI, q)
		if oerr != nil || len(ors.Ranked) == 0 {
			continue
		}
		values := ors.Ranked[0].Values
		oc, oerr := sn.ExplainCtx(ctx, q, values)
		sc, serr := v.ExplainCtx(ctx, q, values)
		if (oerr != nil) != (serr != nil) {
			t.Fatalf("%s: q%d explain: oracle err %v, sharded err %v", tag, qi, oerr, serr)
		}
		if oerr != nil {
			continue
		}
		compareContributions(t, fmt.Sprintf("%s: q%d explain", tag, qi), oc, sc)
	}
}

func compareResultSets(t *testing.T, tag string, want, got *answer.ResultSet) {
	t.Helper()
	if len(want.Ranked) != len(got.Ranked) {
		t.Fatalf("%s: %d ranked answers, oracle %d", tag, len(got.Ranked), len(want.Ranked))
	}
	for i := range want.Ranked {
		w, g := want.Ranked[i], got.Ranked[i]
		if strings.Join(w.Values, "\x1f") != strings.Join(g.Values, "\x1f") {
			t.Fatalf("%s: rank %d values %v, oracle %v", tag, i, g.Values, w.Values)
		}
		if w.Prob != g.Prob {
			t.Fatalf("%s: rank %d (%v) prob %v, oracle %v (diff %g)",
				tag, i, w.Values, g.Prob, w.Prob, g.Prob-w.Prob)
		}
	}
	if len(want.Instances) != len(got.Instances) {
		t.Fatalf("%s: %d instances, oracle %d", tag, len(got.Instances), len(want.Instances))
	}
	for i := range want.Instances {
		w, g := want.Instances[i], got.Instances[i]
		if w.Source != g.Source || w.Row != g.Row || w.Prob != g.Prob ||
			strings.Join(w.Values, "\x1f") != strings.Join(g.Values, "\x1f") {
			t.Fatalf("%s: instance %d = %+v, oracle %+v", tag, i, g, w)
		}
	}
}

func contributionKey(c answer.Contribution) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%x|%s|%d|", c.Mass, c.Source, c.SchemaIdx)
	idxs := make([]int, 0, len(c.MedToSrc))
	for k := range c.MedToSrc {
		idxs = append(idxs, k)
	}
	sort.Ints(idxs)
	for _, k := range idxs {
		fmt.Fprintf(&b, "%d=%s;", k, c.MedToSrc[k])
	}
	fmt.Fprintf(&b, "|%v", c.Rows)
	return b.String()
}

func compareContributions(t *testing.T, tag string, want, got []answer.Contribution) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d contributions, oracle %d", tag, len(got), len(want))
	}
	wk := make([]string, len(want))
	gk := make([]string, len(got))
	for i := range want {
		wk[i] = contributionKey(want[i])
		gk[i] = contributionKey(got[i])
	}
	sort.Strings(wk)
	sort.Strings(gk)
	for i := range wk {
		if wk[i] != gk[i] {
			t.Fatalf("%s: contribution %d = %s, oracle %s", tag, i, gk[i], wk[i])
		}
	}
}

// mutateBoth applies one random mutation to oracle and sharded system
// identically and checks that both take the same fast/rebuild path and
// agree on success. nextID numbers freshly added sources.
func mutateBoth(t *testing.T, rng *rand.Rand, oracle *core.System, sh *System, nextID *int) {
	t.Helper()
	switch rng.Intn(4) {
	case 0, 1: // feedback on a random existing correspondence
		srcs := oracle.Corpus.Sources
		src := srcs[rng.Intn(len(srcs))]
		pms := oracle.Maps[src.Name]
		l := rng.Intn(len(pms))
		for _, g := range pms[l].Groups {
			if len(g.Corrs) == 0 {
				continue
			}
			c := g.Corrs[rng.Intn(len(g.Corrs))]
			fb := core.Feedback{Source: src.Name, SrcAttr: c.SrcAttr,
				SchemaIdx: l, MedIdx: c.MedIdx, Confirmed: rng.Float64() < 0.5}
			oerr := oracle.SubmitFeedback(fb)
			serr := sh.SubmitFeedback(fb)
			if (oerr != nil) != (serr != nil) {
				t.Fatalf("feedback %+v: oracle err %v, sharded err %v", fb, oerr, serr)
			}
			return
		}
	case 2: // add a fresh random source
		src := randomSource(rng, fmt.Sprintf("x%02d", *nextID), []string{"alpha", "bravo", "carrot", "delta"})
		*nextID++
		ofast, oerr := oracle.AddSource(src)
		sfast, serr := sh.AddSource(src)
		if (oerr != nil) != (serr != nil) {
			t.Fatalf("add %s: oracle err %v, sharded err %v", src.Name, oerr, serr)
		}
		if oerr == nil && ofast != sfast {
			t.Fatalf("add %s: oracle fast=%v, sharded fast=%v", src.Name, ofast, sfast)
		}
	case 3: // remove a random source (never the last)
		if len(oracle.Corpus.Sources) <= 1 {
			return
		}
		name := oracle.Corpus.Sources[rng.Intn(len(oracle.Corpus.Sources))].Name
		ofast, oerr := oracle.RemoveSource(name)
		sfast, serr := sh.RemoveSource(name)
		if (oerr != nil) != (serr != nil) {
			t.Fatalf("remove %s: oracle err %v, sharded err %v", name, oerr, serr)
		}
		if oerr == nil && ofast != sfast {
			t.Fatalf("remove %s: oracle fast=%v, sharded fast=%v", name, ofast, sfast)
		}
	}
}

// TestDifferentialScatterGather is the headline contract: ≥200 randomized
// trials, cycling shard counts {1,2,4,8}, each trial interleaving queries
// with feedback, source additions and removals, every answer compared
// bit-for-bit against the single-core oracle.
func TestDifferentialScatterGather(t *testing.T) {
	trials := 200
	muts := 4
	if testing.Short() {
		trials = 40
		muts = 3
	}
	counts := []int{1, 2, 4, 8}
	for trial := 0; trial < trials; trial++ {
		shards := counts[trial%len(counts)]
		t.Run(fmt.Sprintf("trial%03d_shards%d", trial, shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*7919 + 17))
			corpus := randomShardCorpus(rng)
			oracle, err := core.Setup(corpus, core.Config{})
			if err != nil {
				t.Fatalf("oracle setup: %v", err)
			}
			sh, err := New(corpus, core.Config{}, Options{Shards: shards})
			if err != nil {
				t.Fatalf("sharded setup: %v", err)
			}
			if got := sh.NumShards(); got != shards {
				t.Fatalf("NumShards = %d, want %d", got, shards)
			}
			nextID := 0
			compareSystems(t, "initial", oracle, sh, trialQueries(rng, oracle.Corpus))
			for m := 0; m < muts; m++ {
				mutateBoth(t, rng, oracle, sh, &nextID)
				compareSystems(t, fmt.Sprintf("after mutation %d", m),
					oracle, sh, trialQueries(rng, oracle.Corpus))
			}
		})
	}
}
