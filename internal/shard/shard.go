// Package shard scatters one integration system across N in-process
// shards and gathers query answers back into exactly what the single
// system would have produced. Each shard is an ordinary core.System over
// the subset of sources that hash to it, serving from its own epoch
// snapshots and (when durable) journaling feedback into its own WAL
// directory; mediation stays a corpus-global artifact that the
// coordinator computes once and pushes to every shard.
//
// The package's contract is differential: for every query, approach, and
// mutation history, the scatter-gather answer is bit-identical to the
// single-core oracle — identical ranking, probabilities equal to the
// last bit, not merely close. The shard_test differential harness pins
// this at shard counts {1,2,4,8}; the design notes in DESIGN.md lay out
// why the merge preserves IEEE semantics (per-source disjunction factors
// are revisited in global corpus order, absent sources contribute the
// exact no-op factor 1.0).
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"udi/internal/answer"
	"udi/internal/consolidate"
	"udi/internal/core"
	"udi/internal/feedback"
	"udi/internal/mediate"
	"udi/internal/obs"
	"udi/internal/persist"
	"udi/internal/pmapping"
	"udi/internal/schema"
	"udi/internal/sqlparse"
)

// Options configures a sharded system.
type Options struct {
	// Shards is the number of partitions (default 1). Fixed for the life
	// of a data directory: resharding is not supported.
	Shards int
	// DataDir, when set, makes the system durable: each shard keeps its
	// WAL and checkpoint under DataDir/shard-NNN, and the coordinator
	// journals multi-shard mutations so a crash at any point recovers to
	// a state the single-core oracle could have produced.
	DataDir string
	// CheckpointEvery / NoSync configure each shard's persist.Store.
	CheckpointEvery uint64
	NoSync          bool
}

// ShardOf is the deterministic source→shard assignment: FNV-1a of the
// source name modulo the shard count. Exported so tests and operators can
// predict placement; changing it would strand every durable layout.
func ShardOf(name string, shards int) int {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int(h.Sum64() % uint64(shards))
}

// servingMeta is the coordinator's atomically published cross-shard
// state: the global source order (which the merge needs to visit
// disjunction factors in oracle order) and the shared mediation
// artifacts every shard serves.
type servingMeta struct {
	order  []string
	med    *mediate.Result
	target *schema.MediatedSchema
}

// System is the sharded scatter-gather coordinator. Queries snapshot all
// shards lock-free (View); mutations serialize on one coordinator lock
// and route to the owning shard, refreshing the global mediation when a
// source arrives or leaves.
type System struct {
	cfg    core.Config
	opts   Options
	domain string

	shards []*core.System
	stores []*persist.Store // nil entries: in-memory, or shard empty

	// mu is held exclusively by structural mutations (add/remove source,
	// checkpoint, close) and shared by feedback submissions: feedback
	// routes to exactly one shard's own single-writer commit path, so
	// concurrent submissions to the same shard reach its group-commit
	// queue together and batch under one fsync instead of serializing on
	// the coordinator. fbInFlight counts submissions between RLock and
	// the shard commit so Committing stays conservative in that window.
	mu         sync.RWMutex
	mutating   atomic.Bool
	fbInFlight atomic.Int64
	meta       atomic.Pointer[servingMeta]
	sources    map[string]*schema.Source

	// crashAt, when set by a test, simulates a crash at a named commit
	// stage: a non-nil return aborts the mutation mid-protocol, leaving
	// the on-disk state exactly as a real crash there would.
	crashAt func(stage string) error
}

// New sets up a sharded system over the corpus: one global core.Setup
// computes the mediation and per-source artifacts, and each shard
// receives the projection covering its sources. With Options.DataDir set
// the layout is persisted immediately.
func New(c *schema.Corpus, cfg core.Config, opts Options) (*System, error) {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	blue, err := core.Setup(c, cfg)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, opts: opts, domain: c.Domain}
	n := opts.Shards
	s.shards = make([]*core.System, n)
	s.stores = make([]*persist.Store, n)
	for i := 0; i < n; i++ {
		proj, err := projectShard(c.Domain, cfg, blue, shardSources(c.Sources, i, n))
		if err != nil {
			return nil, err
		}
		s.shards[i] = proj
	}
	s.sources = make(map[string]*schema.Source, len(c.Sources))
	order := make([]string, len(c.Sources))
	for i, src := range c.Sources {
		order[i] = src.Name
		s.sources[src.Name] = src
	}
	s.publishMeta(order, blue.Med, blue.Target)
	if opts.DataDir != "" {
		if err := s.initDurable(order); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// shardSources filters the global source list down to shard i of n,
// preserving global order.
func shardSources(sources []*schema.Source, i, n int) []*schema.Source {
	var out []*schema.Source
	for _, src := range sources {
		if ShardOf(src.Name, n) == i {
			out = append(out, src)
		}
	}
	return out
}

// projectShard builds one shard's core from a globally set-up blueprint:
// the sub-corpus in global order, the blueprint's p-mappings and
// consolidated mappings for exactly those sources, and the shared global
// mediation. An empty subset yields a servable zero-source core.
func projectShard(domain string, cfg core.Config, blue *core.System, subs []*schema.Source) (*core.System, error) {
	if len(subs) == 0 {
		return core.NewEmptyShard(domain, cfg, blue.Med, blue.Target)
	}
	subCorpus, err := schema.NewCorpus(domain, subs)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	maps := make(map[string][]*pmapping.PMapping, len(subs))
	cons := make(map[string]*consolidate.PMapping, len(subs))
	for _, src := range subs {
		maps[src.Name] = blue.Maps[src.Name]
		if cpm, ok := blue.ConsMaps[src.Name]; ok {
			cons[src.Name] = cpm
		}
	}
	return core.Restore(subCorpus, cfg, blue.Med, maps, blue.Target, cons)
}

// SourcesFor filters the global source list down to shard i of n in
// global order — the subset ShardOf assigns there. Exported for the
// networked coordinator, which projects state before shipping it to
// remote shard hosts.
func SourcesFor(sources []*schema.Source, i, n int) []*schema.Source {
	return shardSources(sources, i, n)
}

// Project builds one shard's core from a globally set-up blueprint (see
// projectShard). Exported for the networked coordinator.
func Project(domain string, cfg core.Config, blue *core.System, subs []*schema.Source) (*core.System, error) {
	return projectShard(domain, cfg, blue, subs)
}

func (s *System) publishMeta(order []string, med *mediate.Result, target *schema.MediatedSchema) {
	s.meta.Store(&servingMeta{order: order, med: med, target: target})
}

// orderedSources materializes the current sources in global order.
func (s *System) orderedSources(order []string) []*schema.Source {
	out := make([]*schema.Source, 0, len(order))
	for _, name := range order {
		out = append(out, s.sources[name])
	}
	return out
}

// NumShards returns the shard count.
func (s *System) NumShards() int { return len(s.shards) }

// Obs returns the observability registry mutations and shards report to.
func (s *System) Obs() *obs.Registry {
	if s.cfg.Obs != nil {
		return s.cfg.Obs
	}
	return obs.Default
}

// Committing reports whether any mutation is in flight — on the
// coordinator or inside any shard's commit path.
func (s *System) Committing() bool {
	if s.mutating.Load() || s.fbInFlight.Load() > 0 {
		return true
	}
	for _, sh := range s.shards {
		if sh.Committing() {
			return true
		}
	}
	return false
}

func (s *System) crash(stage string) error {
	if s.crashAt == nil {
		return nil
	}
	return s.crashAt(stage)
}

// --- read path --------------------------------------------------------

// View is one cross-shard read view: the published coordinator meta plus
// one snapshot per shard, each captured with a single atomic load. Reads
// are per-shard snapshot-isolated: a concurrent multi-shard mutation may
// be visible on some shards and not others within one View (the epoch
// vector makes this observable); each shard's state is internally
// consistent, and quiescent views are globally consistent.
type View struct {
	meta  *servingMeta
	snaps []*core.Snapshot
}

// View captures the current cross-shard read view.
func (s *System) View() *View {
	meta := s.meta.Load()
	snaps := make([]*core.Snapshot, len(s.shards))
	for i, sh := range s.shards {
		snaps[i] = sh.Snapshot()
	}
	return &View{meta: meta, snaps: snaps}
}

// Epochs is the cross-shard epoch vector, one commit counter per shard.
func (v *View) Epochs() []uint64 {
	out := make([]uint64, len(v.snaps))
	for i, sn := range v.snaps {
		out[i] = sn.Epoch
	}
	return out
}

// Epoch collapses the epoch vector into one monotone counter (the sum):
// every commit anywhere increases it, so it plays the staleness-token
// role the single-core epoch plays in /v1 responses.
func (v *View) Epoch() uint64 {
	var sum uint64
	for _, sn := range v.snaps {
		sum += sn.Epoch
	}
	return sum
}

// CreatedAt is the publication time of the newest shard snapshot.
func (v *View) CreatedAt() time.Time {
	var t time.Time
	for _, sn := range v.snaps {
		if sn.CreatedAt.After(t) {
			t = sn.CreatedAt
		}
	}
	return t
}

// NumSources sums the shard corpora.
func (v *View) NumSources() int {
	n := 0
	for _, sn := range v.snaps {
		n += len(sn.Corpus.Sources)
	}
	return n
}

// PMed returns the shared probabilistic mediated schema.
func (v *View) PMed() *schema.PMedSchema { return v.meta.med.PMed }

// Target returns the shared consolidated mediated schema.
func (v *View) Target() *schema.MediatedSchema { return v.meta.target }

// RunCtx fans the query out to every shard concurrently and merges the
// partial results into the single-engine answer. The context propagates
// to every shard scan; the first shard error cancels the rest. With one
// shard the call is a plain dispatch (the shard IS the system).
func (v *View) RunCtx(ctx context.Context, a core.Approach, q *sqlparse.Query) (*answer.ResultSet, error) {
	if len(v.snaps) == 1 {
		return v.snaps[0].RunCtx(ctx, a, q)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	parts := make([]*answer.ResultSet, len(v.snaps))
	errs := make([]error, len(v.snaps))
	var wg sync.WaitGroup
	for i := range v.snaps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, err := v.snaps[i].RunCtx(ctx, a, q)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			parts[i] = rs
		}(i)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return answer.MergeResultSets(v.meta.order, parts), nil
}

// firstError picks the error to surface from a fan-out: the first
// non-cancellation error in shard order (a real failure beats the
// context.Canceled its cancel propagated to the other shards), else the
// first error. Deterministic given deterministic per-shard outcomes.
func firstError(errs []error) error {
	var ret error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if ret == nil || (errors.Is(ret, context.Canceled) && !errors.Is(err, context.Canceled)) {
			ret = err
		}
	}
	return ret
}

// ExplainCtx fans provenance out to every shard and re-sorts the merged
// contributions with the engine's comparator (mass descending, then
// source, then schema). Order among contributions tied on all three is
// not pinned across shard counts.
func (v *View) ExplainCtx(ctx context.Context, q *sqlparse.Query, values []string) ([]answer.Contribution, error) {
	if len(v.snaps) == 1 {
		return v.snaps[0].ExplainCtx(ctx, q, values)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	parts := make([][]answer.Contribution, len(v.snaps))
	errs := make([]error, len(v.snaps))
	var wg sync.WaitGroup
	for i := range v.snaps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cs, err := v.snaps[i].ExplainCtx(ctx, q, values)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			parts[i] = cs
		}(i)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	var out []answer.Contribution
	for _, cs := range parts {
		out = append(out, cs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mass != out[j].Mass {
			return out[i].Mass > out[j].Mass
		}
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].SchemaIdx < out[j].SchemaIdx
	})
	return out, nil
}

// Candidates merges the per-shard feedback question queues into one
// ranking (uncertainty descending, the same order feedback.Session
// uses), truncated to limit (0 = all). A source lives in exactly one
// shard, so per-shard dedup is global dedup; the instance-overlap signal
// for unmapped attributes pools values shard-locally, which can score
// proposals slightly differently than one global session would — the
// ranking is advisory, not part of the differential contract.
func (s *System) Candidates(v *View, limit int) []feedback.Candidate {
	var all []feedback.Candidate
	for i, sn := range v.snaps {
		sess := feedback.NewSession(s.shards[i], nil)
		all = append(all, sess.CandidatesIn(sn, 0)...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Uncertainty != all[j].Uncertainty {
			return all[i].Uncertainty > all[j].Uncertainty
		}
		if all[i].Source != all[j].Source {
			return all[i].Source < all[j].Source
		}
		if all[i].SrcAttr != all[j].SrcAttr {
			return all[i].SrcAttr < all[j].SrcAttr
		}
		return all[i].MedIdx < all[j].MedIdx
	})
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all
}

// --- mutation path ----------------------------------------------------

// SubmitFeedback routes one feedback item to the shard owning the source.
// The owning shard's commit path write-ahead-logs it (when durable) and
// publishes the shard's next epoch; no other shard is touched. Feedback
// conditions only the source's p-mappings, never the global mediation,
// so shard-local application is value-identical to the single-core path.
//
// Only a read lock is taken: concurrent submissions proceed in parallel
// to their owning shards, where each shard's group-commit queue batches
// same-shard items under one WAL fsync and one epoch (see
// core.SubmitFeedback). Structural mutations still exclude feedback via
// the write lock, so a source can never be re-homed mid-submission.
func (s *System) SubmitFeedback(fb core.Feedback) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.fbInFlight.Add(1)
	defer s.fbInFlight.Add(-1)
	return s.shards[ShardOf(fb.Source, len(s.shards))].SubmitFeedback(fb)
}

// AddSource grows the sharded system with a new source, reproducing the
// single-core AddSource decision exactly: the global mediation is
// regenerated, and if the clustering is unchanged only the probabilities
// are refreshed (the owner shard adopts the source; every other shard
// swaps in the refreshed mediation), otherwise the whole system is
// rebuilt and re-projected. Returns true when the fast path applied.
//
// Durability protocol (DataDir mode): the coordinator journals the op
// before mutating any shard, checkpoints the owner after applying, then
// rewrites the manifest and drops the journal. A crash at any stage
// recovers by redoing the journaled op idempotently (Open), so the
// mutation is atomic across shards: after recovery it is either fully
// applied or fully absent.
func (s *System) AddSource(src *schema.Source) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mutating.Store(true)
	defer s.mutating.Store(false)
	meta := s.meta.Load()

	all := append(s.orderedSources(meta.order), src)
	corpus, err := schema.NewCorpus(s.domain, all)
	if err != nil {
		return false, fmt.Errorf("shard: %w", err)
	}
	gen, err := mediate.Generate(corpus, s.cfg.Mediate)
	if err != nil {
		return false, fmt.Errorf("shard: %w", err)
	}
	newOrder := append(append(make([]string, 0, len(meta.order)+1), meta.order...), src.Name)
	op := &core.Op{Kind: core.OpAddSource, Add: &core.SourceData{Name: src.Name, Attrs: src.Attrs, Rows: src.Rows}}

	if !core.SameSchemaSet(meta.med.PMed, gen.PMed) {
		return false, s.rebuildLocked(corpus, newOrder, op, meta)
	}
	// Fast path: clusterings unchanged. Keep the existing schema order
	// (shard Maps are indexed by it) and refresh the probabilities with
	// the new source counted — the same floats the oracle computes, since
	// AssignProbabilities counts over the identical corpus.
	probs := mediate.AssignProbabilities(meta.med.PMed.Schemas, corpus)
	pmed, err := schema.NewPMedSchema(meta.med.PMed.Schemas, probs)
	if err != nil {
		// A schema's probability hit zero: effectively a set change.
		return false, s.rebuildLocked(corpus, newOrder, op, meta)
	}
	med := &mediate.Result{PMed: pmed, Graph: gen.Graph, FrequentAttrs: gen.FrequentAttrs}

	if err := s.journalBegin(op, meta); err != nil {
		return false, err
	}
	if err := s.crash("journal"); err != nil {
		return false, err
	}
	owner := ShardOf(src.Name, len(s.shards))
	if err := s.shards[owner].ShardAdoptSource(src, med); err != nil {
		// Nothing applied; the journaled op failed deterministically, so
		// a redo after a crash here fails the same way and also rolls
		// back. Clean the journal on the spot.
		s.journalDrop()
		return false, err
	}
	if err := s.crash("applied"); err != nil {
		return false, err
	}
	for i, sh := range s.shards {
		if i == owner {
			continue
		}
		if err := sh.ShardSetMediation(med); err != nil {
			return false, err
		}
	}
	s.sources[src.Name] = src
	s.publishMeta(newOrder, med, meta.target)
	s.Obs().Add("shard.add_source", 1)
	return true, s.finishDurable([]int{owner}, newOrder)
}

// AddSources grows the sharded system with a whole batch of sources
// under one coordination round, mirroring core.AddSources: one global
// mediation pass, one journal record (one atomic journal write for the
// batch), one bulk adoption per owner shard, one published meta and one
// finishDurable checkpoint pass. Returns true when the fast path applied
// for the whole batch.
//
// The batch is all-or-nothing. On the fast path a failed owner adoption
// rolls back any owner that already adopted (dropping its batch sources)
// and clears the journal, so memory and disk both return to the pre-op
// state; a crash mid-batch recovers through the journaled batch redo,
// which lands on fully-applied or fully-absent exactly like the
// single-source protocol.
func (s *System) AddSources(srcs []*schema.Source) (bool, error) {
	if len(srcs) == 0 {
		return true, nil
	}
	if len(srcs) == 1 {
		return s.AddSource(srcs[0])
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mutating.Store(true)
	defer s.mutating.Store(false)
	meta := s.meta.Load()

	seen := make(map[string]bool, len(srcs))
	for _, src := range srcs {
		if seen[src.Name] {
			return false, fmt.Errorf("shard: duplicate source %q in batch", src.Name)
		}
		seen[src.Name] = true
		if _, ok := s.sources[src.Name]; ok {
			return false, fmt.Errorf("shard: source %q already in corpus", src.Name)
		}
	}

	all := append(s.orderedSources(meta.order), srcs...)
	corpus, err := schema.NewCorpus(s.domain, all)
	if err != nil {
		return false, fmt.Errorf("shard: %w", err)
	}
	gen, err := mediate.Generate(corpus, s.cfg.Mediate)
	if err != nil {
		return false, fmt.Errorf("shard: %w", err)
	}
	newOrder := make([]string, 0, len(meta.order)+len(srcs))
	newOrder = append(newOrder, meta.order...)
	ops := make([]core.Op, len(srcs))
	for i, src := range srcs {
		newOrder = append(newOrder, src.Name)
		ops[i] = core.Op{Kind: core.OpAddSource, Add: &core.SourceData{Name: src.Name, Attrs: src.Attrs, Rows: src.Rows}}
	}

	if !core.SameSchemaSet(meta.med.PMed, gen.PMed) {
		return false, s.rebuildBatchLocked(corpus, newOrder, ops, meta)
	}
	probs := mediate.AssignProbabilities(meta.med.PMed.Schemas, corpus)
	pmed, err := schema.NewPMedSchema(meta.med.PMed.Schemas, probs)
	if err != nil {
		return false, s.rebuildBatchLocked(corpus, newOrder, ops, meta)
	}
	med := &mediate.Result{PMed: pmed, Graph: gen.Graph, FrequentAttrs: gen.FrequentAttrs}

	if err := s.journalBeginOps(ops, meta); err != nil {
		return false, err
	}
	if err := s.crash("journal"); err != nil {
		return false, err
	}
	n := len(s.shards)
	byOwner := make(map[int][]*schema.Source)
	for _, src := range srcs {
		o := ShardOf(src.Name, n)
		byOwner[o] = append(byOwner[o], src)
	}
	owners := make([]int, 0, len(byOwner))
	for o := range byOwner {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	touched := make([]int, 0, len(owners))
	for _, o := range owners {
		if err := s.shards[o].ShardAdoptSources(byOwner[o], med); err != nil {
			// Roll earlier owners back so the journaled batch fails
			// all-or-nothing, exactly as its redo would after a crash here.
			for _, t := range touched {
				for _, src := range byOwner[t] {
					if derr := s.shards[t].ShardDropSource(src.Name, meta.med); derr != nil {
						return false, derr
					}
				}
			}
			s.journalDrop()
			return false, err
		}
		touched = append(touched, o)
	}
	if err := s.crash("applied"); err != nil {
		return false, err
	}
	isOwner := make(map[int]bool, len(owners))
	for _, o := range owners {
		isOwner[o] = true
	}
	for i, sh := range s.shards {
		if isOwner[i] {
			continue
		}
		if err := sh.ShardSetMediation(med); err != nil {
			return false, err
		}
	}
	for _, src := range srcs {
		s.sources[src.Name] = src
	}
	s.publishMeta(newOrder, med, meta.target)
	s.Obs().Add("shard.add_sources", 1)
	s.Obs().Add("shard.add_sources.ops", int64(len(srcs)))
	return true, s.finishDurable(touched, newOrder)
}

// RemoveSource drops a source, mirroring the single-core decision:
// unknown sources and the last source are refused, a mediation failure
// on the shrunken corpus aborts with no change, and the fast/rebuild
// split follows the regenerated clustering. Returns true on the fast
// path.
func (s *System) RemoveSource(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mutating.Store(true)
	defer s.mutating.Store(false)
	meta := s.meta.Load()

	if _, ok := s.sources[name]; !ok {
		return false, fmt.Errorf("shard: %w %q", core.ErrUnknownSource, name)
	}
	if len(meta.order) == 1 {
		return false, fmt.Errorf("shard: cannot remove the last source")
	}
	newOrder := make([]string, 0, len(meta.order)-1)
	for _, n := range meta.order {
		if n != name {
			newOrder = append(newOrder, n)
		}
	}
	corpus, err := schema.NewCorpus(s.domain, s.orderedSources(newOrder))
	if err != nil {
		return false, fmt.Errorf("shard: %w", err)
	}
	gen, err := mediate.Generate(corpus, s.cfg.Mediate)
	if err != nil {
		// The shrunken corpus may have no frequent attributes; refuse
		// with no change, like the single-core path.
		return false, fmt.Errorf("shard: %w", err)
	}
	op := &core.Op{Kind: core.OpRemoveSource, Remove: name}

	if !core.SameSchemaSet(meta.med.PMed, gen.PMed) {
		return false, s.rebuildLocked(corpus, newOrder, op, meta)
	}
	probs := mediate.AssignProbabilities(meta.med.PMed.Schemas, corpus)
	pmed, err := schema.NewPMedSchema(meta.med.PMed.Schemas, probs)
	if err != nil {
		return false, s.rebuildLocked(corpus, newOrder, op, meta)
	}
	med := &mediate.Result{PMed: pmed, Graph: gen.Graph, FrequentAttrs: gen.FrequentAttrs}

	if err := s.journalBegin(op, meta); err != nil {
		return false, err
	}
	if err := s.crash("journal"); err != nil {
		return false, err
	}
	owner := ShardOf(name, len(s.shards))
	if err := s.shards[owner].ShardDropSource(name, med); err != nil {
		s.journalDrop()
		return false, err
	}
	if err := s.crash("applied"); err != nil {
		return false, err
	}
	for i, sh := range s.shards {
		if i == owner {
			continue
		}
		if err := sh.ShardSetMediation(med); err != nil {
			return false, err
		}
	}
	delete(s.sources, name)
	s.publishMeta(newOrder, med, meta.target)
	s.Obs().Add("shard.remove_source", 1)
	return true, s.finishDurable([]int{owner}, newOrder)
}

// rebuildLocked is the slow path shared by AddSource and RemoveSource:
// one global core.Setup over the new corpus, re-projected onto every
// shard as a state replacement (readers observe it as one more epoch per
// shard). Setup runs before the journal is written, so a Setup failure
// leaves both memory and disk untouched.
func (s *System) rebuildLocked(corpus *schema.Corpus, newOrder []string, op *core.Op, meta *servingMeta) error {
	return s.rebuildJournaled(corpus, newOrder, func() error { return s.journalBegin(op, meta) })
}

// rebuildBatchLocked is rebuildLocked for an AddSources batch: the whole
// batch is journaled as one record, so recovery redoes (or rolls back)
// all of it together.
func (s *System) rebuildBatchLocked(corpus *schema.Corpus, newOrder []string, ops []core.Op, meta *servingMeta) error {
	return s.rebuildJournaled(corpus, newOrder, func() error { return s.journalBeginOps(ops, meta) })
}

func (s *System) rebuildJournaled(corpus *schema.Corpus, newOrder []string, journal func() error) error {
	blue, err := core.Setup(corpus, s.cfg)
	if err != nil {
		return err
	}
	if err := journal(); err != nil {
		return err
	}
	if err := s.crash("journal"); err != nil {
		return err
	}
	n := len(s.shards)
	touched := make([]int, 0, n)
	for i := 0; i < n; i++ {
		proj, err := projectShard(s.domain, s.cfg, blue, shardSources(corpus.Sources, i, n))
		if err != nil {
			return err
		}
		if err := s.shards[i].ShardReplaceState(proj); err != nil {
			return err
		}
		touched = append(touched, i)
	}
	if err := s.crash("applied"); err != nil {
		return err
	}
	s.sources = make(map[string]*schema.Source, len(corpus.Sources))
	for _, src := range corpus.Sources {
		s.sources[src.Name] = src
	}
	s.publishMeta(newOrder, blue.Med, blue.Target)
	s.Obs().Add("shard.rebuild", 1)
	return s.finishDurable(touched, newOrder)
}
