package shard

// Durability for the sharded coordinator. Single-shard mutations
// (feedback) ride each shard's own WAL, exactly like the single-core
// store. Multi-shard mutations (add/remove source, rebuilds) cannot: a
// WAL replay inside one shard would recompute shard-local mediation,
// which is wrong by construction. They are made atomic with a
// coordinator journal instead:
//
//	1. journal the op (with the pre-op mediation and source order)
//	2. apply to the shards in memory
//	3. checkpoint the touched shards' stores
//	4. rewrite the manifest, drop the journal
//
// A crash before 1 loses nothing; a crash at any later point leaves the
// journal in place, and Open redoes the op from scratch — the redo
// recomputes the same deterministic decision (fast vs rebuild) from the
// journaled pre-op state and applies it idempotently, so recovery lands
// on the fully-applied state no matter which stage the crash hit. If the
// op had failed deterministically (it was journaled but could not
// apply), the redo fails the same way and rolls back to the pre-op
// state. Either way the mutation is atomic: fully applied or fully
// absent, never half.
//
// Untouched shards keep serving probabilities that are stale on disk
// (the fast path refreshes them in memory only); every Open reconciles
// by recounting AssignProbabilities over the reconstructed corpus, which
// reproduces the serving values bit-for-bit — Generate's probabilities
// are themselves AssignProbabilities counts, so the recount is an
// identity, not an approximation.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"udi/internal/core"
	"udi/internal/mediate"
	"udi/internal/persist"
	"udi/internal/schema"
)

const (
	manifestFile    = "MANIFEST.json"
	journalFile     = "JOURNAL.json"
	manifestVersion = 1
)

// manifest records the fixed shard layout and the committed global
// source order. Rewritten atomically after every multi-shard mutation.
type manifest struct {
	Version int      `json:"version"`
	Domain  string   `json:"domain"`
	Shards  int      `json:"shards"`
	Order   []string `json:"order"`
}

// journalRecord captures everything a redo needs to replay one
// multi-shard op deterministically: the op itself plus the pre-op global
// order and p-med-schema (schema sequence and probabilities — the
// sequence matters because shard Maps are indexed by it). A batched
// AddSources journals every op in Ops under one record (and therefore one
// atomic journal write); Op is then unused. Journals written by older
// builds carry only Op and replay unchanged.
type journalRecord struct {
	Op      core.Op      `json:"op"`
	Ops     []core.Op    `json:"ops,omitempty"`
	Order   []string     `json:"order"`
	Schemas [][][]string `json:"schemas"`
	Probs   []float64    `json:"probs"`
}

func shardDir(base string, i int) string {
	return filepath.Join(base, fmt.Sprintf("shard-%03d", i))
}

func (s *System) durable() bool { return s.opts.DataDir != "" }

func (s *System) storeOpts() persist.StoreOptions {
	return persist.StoreOptions{
		CheckpointEvery: s.opts.CheckpointEvery,
		NoSync:          s.opts.NoSync,
		Obs:             s.cfg.Obs,
	}
}

// initDurable persists a freshly built layout: one store per non-empty
// shard, then the manifest. Empty shards get no files at all (an empty
// corpus has no checkpointable state); their directories appear when a
// source first hashes to them.
func (s *System) initDurable(order []string) error {
	if err := os.MkdirAll(s.opts.DataDir, 0o755); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	for i := range s.shards {
		if len(s.shards[i].Corpus.Sources) == 0 {
			continue
		}
		if err := s.ensureStore(i); err != nil {
			return err
		}
	}
	return s.writeManifest(order)
}

// ensureStore opens (first checkpoint included) or checkpoints shard i's
// store, making its current in-memory state the on-disk snapshot.
func (s *System) ensureStore(i int) error {
	if s.stores[i] != nil {
		return s.stores[i].Checkpoint()
	}
	sys := s.shards[i]
	_, st, err := persist.OpenStore(shardDir(s.opts.DataDir, i), s.cfg, s.storeOpts(),
		func() (*core.System, error) { return sys, nil })
	if err != nil {
		return err
	}
	s.stores[i] = st
	return nil
}

// dropStore closes shard i's store and deletes its files — the shard's
// last source left. HasSnapshot then classifies the directory as empty.
func (s *System) dropStore(i int) error {
	if s.stores[i] != nil {
		if err := s.stores[i].Close(); err != nil {
			return err
		}
		s.stores[i] = nil
	}
	return persist.RemoveStoreFiles(shardDir(s.opts.DataDir, i))
}

// journalBegin makes the op durable before any shard changes. In-memory
// systems skip it.
func (s *System) journalBegin(op *core.Op, meta *servingMeta) error {
	return s.journalWrite(journalRecord{Op: *op}, meta)
}

// journalBeginOps journals a whole AddSources batch as one record — one
// atomic write covers the batch, the coordinator analogue of the WAL's
// AppendBatch group commit.
func (s *System) journalBeginOps(ops []core.Op, meta *servingMeta) error {
	return s.journalWrite(journalRecord{Ops: ops}, meta)
}

func (s *System) journalWrite(rec journalRecord, meta *servingMeta) error {
	if !s.durable() {
		return nil
	}
	rec.Order = meta.order
	rec.Probs = meta.med.PMed.Probs
	for _, m := range meta.med.PMed.Schemas {
		clusters := make([][]string, len(m.Attrs))
		for i, a := range m.Attrs {
			clusters[i] = []string(a)
		}
		rec.Schemas = append(rec.Schemas, clusters)
	}
	return persist.WriteFileAtomic(filepath.Join(s.opts.DataDir, journalFile), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(&rec)
	})
}

func (s *System) journalDrop() {
	if !s.durable() {
		return
	}
	os.Remove(filepath.Join(s.opts.DataDir, journalFile))
}

// finishDurable completes a multi-shard mutation: checkpoint every
// touched shard (dropping stores for shards that emptied), rewrite the
// manifest, drop the journal. The crash hooks mark the recovery-relevant
// boundaries the fault-injection tests exercise.
func (s *System) finishDurable(touched []int, order []string) error {
	if !s.durable() {
		return nil
	}
	for _, i := range touched {
		if len(s.shards[i].Corpus.Sources) == 0 {
			if err := s.dropStore(i); err != nil {
				return err
			}
			continue
		}
		if err := s.ensureStore(i); err != nil {
			return err
		}
	}
	if err := s.crash("checkpointed"); err != nil {
		return err
	}
	if err := s.writeManifest(order); err != nil {
		return err
	}
	if err := s.crash("manifest"); err != nil {
		return err
	}
	s.journalDrop()
	return nil
}

func (s *System) writeManifest(order []string) error {
	man := manifest{Version: manifestVersion, Domain: s.domain, Shards: len(s.shards), Order: order}
	return persist.WriteFileAtomic(filepath.Join(s.opts.DataDir, manifestFile), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(&man)
	})
}

// Checkpoint forces every shard store to snapshot and truncate its WAL.
func (s *System) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.stores {
		if st == nil {
			continue
		}
		if err := st.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases every shard store's WAL file.
func (s *System) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for i, st := range s.stores {
		if st == nil {
			continue
		}
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
		s.stores[i] = nil
	}
	return first
}

// --- recovery ---------------------------------------------------------

// Open recovers (or initializes) a durable sharded system in dir. With
// no manifest present, setup provides the initial corpus and the layout
// is created fresh. Otherwise every shard is restored from its own
// snapshot + WAL (replaying shard-local feedback), a pending journal is
// redone, and the cross-shard mediation is reconciled so all shards
// serve identical, freshly recounted schema probabilities.
func Open(dir string, cfg core.Config, opts Options, setup func() (*schema.Corpus, error)) (*System, error) {
	man, err := readManifest(dir)
	if os.IsNotExist(err) {
		c, err := setup()
		if err != nil {
			return nil, err
		}
		opts.DataDir = dir
		return New(c, cfg, opts)
	}
	if err != nil {
		return nil, err
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("shard: %w: manifest version %d", persist.ErrCorrupt, man.Version)
	}
	if opts.Shards == 0 {
		opts.Shards = man.Shards
	}
	if opts.Shards != man.Shards {
		return nil, fmt.Errorf("shard: data dir has %d shards, -shards requests %d (resharding is not supported)",
			man.Shards, opts.Shards)
	}
	opts.DataDir = dir
	n := man.Shards
	s := &System{cfg: cfg, opts: opts, domain: man.Domain,
		shards: make([]*core.System, n), stores: make([]*persist.Store, n)}

	// Load every shard that has a checkpoint; note the rest as empty.
	seed := -1
	for i := 0; i < n; i++ {
		d := shardDir(dir, i)
		if !persist.HasSnapshot(d) {
			// A crash between deleting a snapshot and its WAL (dropStore)
			// can strand a WAL in an empty shard directory; clean it so a
			// later store open does not replay it against a fresh corpus.
			if _, err := os.Stat(d); err == nil {
				if err := persist.RemoveStoreFiles(d); err != nil {
					return nil, err
				}
			}
			continue
		}
		sys, st, err := persist.OpenStore(d, cfg, s.storeOpts(), func() (*core.System, error) {
			return nil, fmt.Errorf("shard: %w: shard %d snapshot disappeared", persist.ErrCorrupt, i)
		})
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.shards[i] = sys
		s.stores[i] = st
		if seed < 0 {
			seed = i
		}
	}
	if seed < 0 {
		return nil, fmt.Errorf("shard: %w: no shard has a snapshot", persist.ErrCorrupt)
	}
	// Empty shards get zero-source cores seeded with an arbitrary loaded
	// shard's mediation; redo/reconcile pushes the authoritative one.
	for i := 0; i < n; i++ {
		if s.shards[i] != nil {
			continue
		}
		empty, err := core.NewEmptyShard(man.Domain, cfg, s.shards[seed].Med, s.shards[seed].Target)
		if err != nil {
			return nil, err
		}
		s.shards[i] = empty
	}

	jr, jerr := readJournal(dir)
	if jerr != nil && !os.IsNotExist(jerr) {
		return nil, jerr
	}
	var order []string
	if jerr == nil {
		order, err = s.redo(jr)
	} else {
		order, err = man.Order, s.reconcile(man.Order)
	}
	if err != nil {
		s.Close()
		return nil, err
	}
	if err := s.validate(order); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// reconcile rebuilds the shared serving mediation after a restart: all
// shards must agree on the clustering (they always do — every committed
// mutation pushes one mediation to all of them), and the probabilities
// are recounted over the reconstructed global corpus, which reproduces
// the last served values exactly (see the package comment). It also
// populates s.sources and publishes the meta.
func (s *System) reconcile(order []string) error {
	n := len(s.shards)
	s.sources = make(map[string]*schema.Source, len(order))
	srcs := make([]*schema.Source, 0, len(order))
	for _, name := range order {
		owner := s.shards[ShardOf(name, n)]
		var found *schema.Source
		for _, src := range owner.Corpus.Sources {
			if src.Name == name {
				found = src
				break
			}
		}
		if found == nil {
			return fmt.Errorf("shard: %w: source %q missing from shard %d", persist.ErrCorrupt, name, ShardOf(name, n))
		}
		s.sources[name] = found
		srcs = append(srcs, found)
	}
	corpus, err := schema.NewCorpus(s.domain, srcs)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	// All shards must hold the same schema sequence: Maps are indexed by
	// it, and the recounted probabilities are assigned positionally.
	var ref *core.System
	for _, sh := range s.shards {
		if len(sh.Corpus.Sources) == 0 {
			continue
		}
		if ref == nil {
			ref = sh
			continue
		}
		if !sameSchemaSequence(ref.Med.PMed, sh.Med.PMed) {
			return fmt.Errorf("shard: %w: shards disagree on the mediated clustering", persist.ErrCorrupt)
		}
	}
	probs := mediate.AssignProbabilities(ref.Med.PMed.Schemas, corpus)
	pmed, err := schema.NewPMedSchema(ref.Med.PMed.Schemas, probs)
	if err != nil {
		return fmt.Errorf("shard: %w: reconciled probabilities invalid: %v", persist.ErrCorrupt, err)
	}
	med := &mediate.Result{PMed: pmed}
	for _, sh := range s.shards {
		if err := sh.ShardSetMediation(med); err != nil {
			return err
		}
	}
	s.publishMeta(order, med, ref.Target)
	return nil
}

func sameSchemaSequence(a, b *schema.PMedSchema) bool {
	if len(a.Schemas) != len(b.Schemas) {
		return false
	}
	for i := range a.Schemas {
		if a.Schemas[i].Key() != b.Schemas[i].Key() {
			return false
		}
	}
	return true
}

// redo rolls a journaled multi-shard op forward. The journal holds the
// pre-op order and mediation; the shards on disk hold either the pre-op
// state (crash before the owner checkpoint) or the post-op state (crash
// after), and every step below is idempotent across that difference.
// Returns the committed global order.
func (s *System) redo(jr *journalRecord) ([]string, error) {
	n := len(s.shards)
	preSchemas := make([]*schema.MediatedSchema, len(jr.Schemas))
	for i, clusters := range jr.Schemas {
		attrs := make([]schema.MediatedAttr, len(clusters))
		for j, c := range clusters {
			attrs[j] = schema.NewMediatedAttr(c...)
		}
		m, err := schema.NewMediatedSchema(attrs)
		if err != nil {
			return nil, fmt.Errorf("shard: %w: journal schema %d: %v", persist.ErrCorrupt, i, err)
		}
		preSchemas[i] = m
	}
	prePMed, err := schema.NewPMedSchema(preSchemas, jr.Probs)
	if err != nil {
		return nil, fmt.Errorf("shard: %w: journal p-med-schema: %v", persist.ErrCorrupt, err)
	}
	if len(jr.Ops) > 0 {
		return s.redoBatch(jr, preSchemas, prePMed)
	}

	// The post-op order and corpus. Pre-op sources come from the loaded
	// shards (which hold them at every crash stage); an added source
	// comes from the op payload, never from disk.
	var newOrder []string
	var added *schema.Source
	switch jr.Op.Kind {
	case core.OpAddSource:
		if jr.Op.Add == nil {
			return nil, fmt.Errorf("shard: %w: add journal without payload", persist.ErrCorrupt)
		}
		added, err = schema.NewSource(jr.Op.Add.Name, jr.Op.Add.Attrs, jr.Op.Add.Rows)
		if err != nil {
			return nil, fmt.Errorf("shard: %w: journal source: %v", persist.ErrCorrupt, err)
		}
		newOrder = append(append(make([]string, 0, len(jr.Order)+1), jr.Order...), added.Name)
	case core.OpRemoveSource:
		for _, name := range jr.Order {
			if name != jr.Op.Remove {
				newOrder = append(newOrder, name)
			}
		}
		if len(newOrder) == len(jr.Order) {
			return nil, fmt.Errorf("shard: %w: journal removes unknown source %q", persist.ErrCorrupt, jr.Op.Remove)
		}
	default:
		return nil, fmt.Errorf("shard: %w: journal op kind %q", persist.ErrCorrupt, jr.Op.Kind)
	}
	srcs := make([]*schema.Source, 0, len(newOrder))
	for _, name := range newOrder {
		if added != nil && name == added.Name {
			srcs = append(srcs, added)
			continue
		}
		owner := s.shards[ShardOf(name, n)]
		var found *schema.Source
		for _, src := range owner.Corpus.Sources {
			if src.Name == name {
				found = src
				break
			}
		}
		if found == nil {
			return nil, fmt.Errorf("shard: %w: source %q missing during redo", persist.ErrCorrupt, name)
		}
		srcs = append(srcs, found)
	}
	corpus, err := schema.NewCorpus(s.domain, srcs)
	if err != nil {
		return nil, fmt.Errorf("shard: %w: %v", persist.ErrCorrupt, err)
	}

	// Recompute the fast/rebuild decision exactly as the original did.
	// The journal is only ever written after this computation succeeded
	// pre-crash, so a failure here means the directory is damaged.
	gen, err := mediate.Generate(corpus, s.cfg.Mediate)
	if err != nil {
		return nil, fmt.Errorf("shard: %w: redo mediation: %v", persist.ErrCorrupt, err)
	}
	fast := core.SameSchemaSet(prePMed, gen.PMed)
	var med *mediate.Result
	if fast {
		probs := mediate.AssignProbabilities(preSchemas, corpus)
		pmed, err := schema.NewPMedSchema(preSchemas, probs)
		if err != nil {
			fast = false
		} else {
			med = &mediate.Result{PMed: pmed, Graph: gen.Graph, FrequentAttrs: gen.FrequentAttrs}
		}
	}

	if fast {
		ownerIdx := ShardOf(srcName(jr), n)
		owner := s.shards[ownerIdx]
		switch jr.Op.Kind {
		case core.OpAddSource:
			if findSource(owner, added.Name) == nil {
				if err := owner.ShardAdoptSource(added, med); err != nil {
					// The op was journaled but fails to apply, exactly as
					// it would have pre-crash: roll back to the pre-op
					// state and clear the journal.
					s.journalDrop()
					if rerr := s.reconcile(jr.Order); rerr != nil {
						return nil, rerr
					}
					return jr.Order, nil
				}
			} else if err := owner.ShardSetMediation(med); err != nil {
				return nil, err
			}
		case core.OpRemoveSource:
			if findSource(owner, jr.Op.Remove) != nil {
				if err := owner.ShardDropSource(jr.Op.Remove, med); err != nil {
					return nil, err
				}
			} else if err := owner.ShardSetMediation(med); err != nil {
				return nil, err
			}
		}
		for i, sh := range s.shards {
			if i == ownerIdx {
				continue
			}
			if err := sh.ShardSetMediation(med); err != nil {
				return nil, err
			}
		}
		s.sources = make(map[string]*schema.Source, len(srcs))
		for _, src := range srcs {
			s.sources[src.Name] = src
		}
		s.publishMeta(newOrder, med, owner.Target)
	} else {
		blue, err := core.Setup(corpus, s.cfg)
		if err != nil {
			return nil, fmt.Errorf("shard: %w: redo rebuild: %v", persist.ErrCorrupt, err)
		}
		for i := 0; i < n; i++ {
			proj, err := projectShard(s.domain, s.cfg, blue, shardSources(corpus.Sources, i, n))
			if err != nil {
				return nil, err
			}
			if err := s.shards[i].ShardReplaceState(proj); err != nil {
				return nil, err
			}
		}
		s.sources = make(map[string]*schema.Source, len(srcs))
		for _, src := range srcs {
			s.sources[src.Name] = src
		}
		s.publishMeta(newOrder, blue.Med, blue.Target)
	}

	return s.redoFinish(newOrder)
}

// redoFinish re-persists every shard and commits the journal away — the
// shared tail of the single-op and batch redo paths.
func (s *System) redoFinish(newOrder []string) ([]string, error) {
	for i := 0; i < len(s.shards); i++ {
		if len(s.shards[i].Corpus.Sources) == 0 {
			if err := s.dropStore(i); err != nil {
				return nil, err
			}
			continue
		}
		if err := s.ensureStore(i); err != nil {
			return nil, err
		}
	}
	if err := s.writeManifest(newOrder); err != nil {
		return nil, err
	}
	s.journalDrop()
	s.Obs().Add("shard.redo", 1)
	return newOrder, nil
}

// redoBatch rolls a journaled AddSources batch forward. Like the
// single-op redo it recomputes the fast/rebuild decision from the
// journaled pre-op mediation and applies it idempotently: sources an
// owner shard already holds (the crash hit after that owner applied) are
// skipped, the rest are adopted in bulk. A deterministic apply failure
// rolls the whole batch back — any already-adopted batch source is
// dropped and the pre-op state reconciled — mirroring the live path's
// all-or-nothing contract.
func (s *System) redoBatch(jr *journalRecord, preSchemas []*schema.MediatedSchema, prePMed *schema.PMedSchema) ([]string, error) {
	n := len(s.shards)
	added := make([]*schema.Source, 0, len(jr.Ops))
	addedBy := make(map[string]*schema.Source, len(jr.Ops))
	for i := range jr.Ops {
		op := &jr.Ops[i]
		if op.Kind != core.OpAddSource || op.Add == nil {
			return nil, fmt.Errorf("shard: %w: batch journal op %d kind %q", persist.ErrCorrupt, i, op.Kind)
		}
		src, err := schema.NewSource(op.Add.Name, op.Add.Attrs, op.Add.Rows)
		if err != nil {
			return nil, fmt.Errorf("shard: %w: journal source %q: %v", persist.ErrCorrupt, op.Add.Name, err)
		}
		added = append(added, src)
		addedBy[src.Name] = src
	}
	newOrder := make([]string, 0, len(jr.Order)+len(added))
	newOrder = append(newOrder, jr.Order...)
	for _, src := range added {
		newOrder = append(newOrder, src.Name)
	}
	srcs := make([]*schema.Source, 0, len(newOrder))
	for _, name := range newOrder {
		if src, ok := addedBy[name]; ok {
			srcs = append(srcs, src)
			continue
		}
		found := findSource(s.shards[ShardOf(name, n)], name)
		if found == nil {
			return nil, fmt.Errorf("shard: %w: source %q missing during redo", persist.ErrCorrupt, name)
		}
		srcs = append(srcs, found)
	}
	corpus, err := schema.NewCorpus(s.domain, srcs)
	if err != nil {
		return nil, fmt.Errorf("shard: %w: %v", persist.ErrCorrupt, err)
	}

	gen, err := mediate.Generate(corpus, s.cfg.Mediate)
	if err != nil {
		return nil, fmt.Errorf("shard: %w: redo mediation: %v", persist.ErrCorrupt, err)
	}
	fast := core.SameSchemaSet(prePMed, gen.PMed)
	var med *mediate.Result
	if fast {
		probs := mediate.AssignProbabilities(preSchemas, corpus)
		pmed, err := schema.NewPMedSchema(preSchemas, probs)
		if err != nil {
			fast = false
		} else {
			med = &mediate.Result{PMed: pmed, Graph: gen.Graph, FrequentAttrs: gen.FrequentAttrs}
		}
	}

	if !fast {
		blue, err := core.Setup(corpus, s.cfg)
		if err != nil {
			return nil, fmt.Errorf("shard: %w: redo rebuild: %v", persist.ErrCorrupt, err)
		}
		for i := 0; i < n; i++ {
			proj, err := projectShard(s.domain, s.cfg, blue, shardSources(corpus.Sources, i, n))
			if err != nil {
				return nil, err
			}
			if err := s.shards[i].ShardReplaceState(proj); err != nil {
				return nil, err
			}
		}
		s.sources = make(map[string]*schema.Source, len(srcs))
		for _, src := range srcs {
			s.sources[src.Name] = src
		}
		s.publishMeta(newOrder, blue.Med, blue.Target)
		return s.redoFinish(newOrder)
	}

	byOwner := make(map[int][]*schema.Source)
	for _, src := range added {
		o := ShardOf(src.Name, n)
		byOwner[o] = append(byOwner[o], src)
	}
	adopted := make(map[int]bool, len(byOwner))
	for o, batch := range byOwner {
		pending := batch[:0:0]
		for _, src := range batch {
			if findSource(s.shards[o], src.Name) == nil {
				pending = append(pending, src)
			}
		}
		if len(pending) == 0 {
			continue
		}
		if err := s.shards[o].ShardAdoptSources(pending, med); err != nil {
			// The batch was journaled but fails to apply, exactly as it
			// would have pre-crash: roll the whole batch back (dropping any
			// source an earlier stage already adopted) and clear the
			// journal.
			for _, src := range added {
				so := ShardOf(src.Name, n)
				if findSource(s.shards[so], src.Name) != nil {
					if derr := s.shards[so].ShardDropSource(src.Name, med); derr != nil {
						return nil, derr
					}
				}
			}
			s.journalDrop()
			if rerr := s.reconcile(jr.Order); rerr != nil {
				return nil, rerr
			}
			return jr.Order, nil
		}
		adopted[o] = true
	}
	for i, sh := range s.shards {
		if adopted[i] {
			continue
		}
		if err := sh.ShardSetMediation(med); err != nil {
			return nil, err
		}
	}
	s.sources = make(map[string]*schema.Source, len(srcs))
	for _, src := range srcs {
		s.sources[src.Name] = src
	}
	s.publishMeta(newOrder, med, s.shards[ShardOf(added[0].Name, n)].Target)
	return s.redoFinish(newOrder)
}

func srcName(jr *journalRecord) string {
	if jr.Op.Kind == core.OpAddSource {
		return jr.Op.Add.Name
	}
	return jr.Op.Remove
}

func findSource(sys *core.System, name string) *schema.Source {
	for _, src := range sys.Corpus.Sources {
		if src.Name == name {
			return src
		}
	}
	return nil
}

// validate cross-checks the recovered layout: every source sits in
// exactly the shard its name hashes to, and no shard holds a source the
// order does not list.
func (s *System) validate(order []string) error {
	n := len(s.shards)
	want := make(map[string]bool, len(order))
	for _, name := range order {
		want[name] = true
	}
	total := 0
	for i, sh := range s.shards {
		for _, src := range sh.Corpus.Sources {
			if !want[src.Name] {
				return fmt.Errorf("shard: %w: shard %d holds unlisted source %q", persist.ErrCorrupt, i, src.Name)
			}
			if ShardOf(src.Name, n) != i {
				return fmt.Errorf("shard: %w: source %q found in shard %d, hashes to %d",
					persist.ErrCorrupt, src.Name, i, ShardOf(src.Name, n))
			}
			total++
		}
	}
	if total != len(order) {
		return fmt.Errorf("shard: %w: shards hold %d sources, manifest lists %d", persist.ErrCorrupt, total, len(order))
	}
	return nil
}

func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, err
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("shard: %w: manifest: %v", persist.ErrCorrupt, err)
	}
	return &man, nil
}

func readJournal(dir string) (*journalRecord, error) {
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		return nil, err
	}
	var jr journalRecord
	if err := json.Unmarshal(data, &jr); err != nil {
		return nil, fmt.Errorf("shard: %w: journal: %v", persist.ErrCorrupt, err)
	}
	return &jr, nil
}
