package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"udi/internal/core"
	"udi/internal/schema"
	"udi/internal/sqlparse"
)

// TestShardOf pins the assignment function: deterministic, stable across
// calls, in range, and actually spreading sources (the standard sNN names
// must not all land on one shard of 8 — a regression here would silently
// serialize the fan-out).
func TestShardOf(t *testing.T) {
	used := map[int]bool{}
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("s%02d", i)
		got := ShardOf(name, 8)
		if got < 0 || got >= 8 {
			t.Fatalf("ShardOf(%q, 8) = %d, out of range", name, got)
		}
		if again := ShardOf(name, 8); again != got {
			t.Fatalf("ShardOf(%q, 8) unstable: %d then %d", name, got, again)
		}
		used[got] = true
	}
	if len(used) < 2 {
		t.Fatalf("32 standard names all hash to %v of 8 shards", used)
	}
	if ShardOf("anything", 1) != 0 {
		t.Fatal("single shard must own everything")
	}
}

// TestEpochVector pins the epoch semantics: a feedback commit bumps only
// the owning shard's epoch, a source addition is visible on every shard
// (the mediation push commits everywhere), and the scalar Epoch is the
// vector sum.
func TestEpochVector(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	corpus := randomShardCorpus(rng)
	sh, err := New(corpus, core.Config{}, Options{Shards: 4})
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	before := sh.View().Epochs()
	if len(before) != 4 {
		t.Fatalf("epoch vector has %d entries, want 4", len(before))
	}

	// Feedback: find any correspondence on any shard.
	var fb core.Feedback
	found := false
	v := sh.View()
	for _, sn := range v.snaps {
		for _, src := range sn.Corpus.Sources {
			for l, pm := range sn.Maps[src.Name] {
				for _, g := range pm.Groups {
					if len(g.Corrs) > 0 {
						c := g.Corrs[0]
						fb = core.Feedback{Source: src.Name, SrcAttr: c.SrcAttr,
							SchemaIdx: l, MedIdx: c.MedIdx, Confirmed: true}
						found = true
						break
					}
				}
				if found {
					break
				}
			}
			if found {
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("corpus produced no correspondences")
	}
	if err := sh.SubmitFeedback(fb); err != nil {
		t.Fatalf("feedback: %v", err)
	}
	after := sh.View().Epochs()
	owner := ShardOf(fb.Source, 4)
	for i := range after {
		bumped := after[i] != before[i]
		if i == owner && !bumped {
			t.Fatalf("feedback to shard %d did not bump its epoch: %v -> %v", owner, before, after)
		}
		if i != owner && bumped {
			t.Fatalf("feedback to shard %d bumped shard %d: %v -> %v", owner, i, before, after)
		}
	}

	// A source addition touches every shard (mediation push), so every
	// epoch moves and the scalar token strictly increases.
	src := randomSource(rng, "xepoch", []string{"alpha", "bravo"})
	if _, err := sh.AddSource(src); err != nil {
		t.Fatalf("add: %v", err)
	}
	final := sh.View()
	for i, e := range final.Epochs() {
		if e <= after[i] {
			t.Fatalf("add source left shard %d epoch at %d (was %d)", i, e, after[i])
		}
	}
	var sum uint64
	for _, e := range final.Epochs() {
		sum += e
	}
	if final.Epoch() != sum {
		t.Fatalf("Epoch() = %d, want vector sum %d", final.Epoch(), sum)
	}
}

// TestEmptyShards serves a 1-source corpus from 8 shards: 7 shards hold
// nothing and must still answer (with the exact no-op identity the merge
// depends on), and the durable layout must not materialize store files
// for them.
func TestEmptyShards(t *testing.T) {
	src := schema.MustNewSource("only", []string{"alpha", "bravo"},
		[][]string{{"v1", "v2"}, {"v3", "v4"}})
	corpus, err := schema.NewCorpus("solo", []*schema.Source{src})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := core.Setup(corpus, core.Config{})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	dir := t.TempDir()
	sh, err := New(corpus, core.Config{}, Options{Shards: 8, DataDir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	defer sh.Close()
	q := sqlparse.MustParse("SELECT alpha FROM t")
	compareSystems(t, "single source on 8 shards", oracle, sh, []*sqlparse.Query{q})

	stores := 0
	for i := range sh.stores {
		if sh.stores[i] != nil {
			stores++
		}
	}
	if stores != 1 {
		t.Fatalf("%d shard stores open, want 1 (only the owner persists)", stores)
	}
}

// TestCandidatesMerged checks the merged feedback queue: ranked by
// uncertainty descending with the session's tiebreak, truncated to the
// limit, and covering sources from more than one shard when they exist.
func TestCandidatesMerged(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	corpus := randomShardCorpus(rng)
	sh, err := New(corpus, core.Config{}, Options{Shards: 4})
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	v := sh.View()
	all := sh.Candidates(v, 0)
	if !sort.SliceIsSorted(all, func(i, j int) bool {
		if all[i].Uncertainty != all[j].Uncertainty {
			return all[i].Uncertainty > all[j].Uncertainty
		}
		if all[i].Source != all[j].Source {
			return all[i].Source < all[j].Source
		}
		if all[i].SrcAttr != all[j].SrcAttr {
			return all[i].SrcAttr < all[j].SrcAttr
		}
		return all[i].MedIdx < all[j].MedIdx
	}) {
		t.Fatal("merged candidates not in uncertainty order")
	}
	if len(all) > 3 {
		top := sh.Candidates(v, 3)
		if len(top) != 3 {
			t.Fatalf("limit 3 returned %d candidates", len(top))
		}
		for i := range top {
			if top[i] != all[i] {
				t.Fatalf("limited candidate %d = %+v, want prefix of full list %+v", i, top[i], all[i])
			}
		}
	}
}

// TestQueryCancellation pins context propagation through the fan-out: an
// already-cancelled context must surface the cancellation, not answers.
func TestQueryCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	corpus := randomShardCorpus(rng)
	sh, err := New(corpus, core.Config{}, Options{Shards: 4})
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	attrs := corpus.FrequentAttrs(0.10)
	if len(attrs) == 0 {
		t.Skip("no frequent attributes")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := sqlparse.MustParse("SELECT " + attrs[0] + " FROM t")
	if _, err := sh.View().RunCtx(ctx, core.UDI, q); err == nil {
		t.Fatal("cancelled context produced answers")
	}
}
