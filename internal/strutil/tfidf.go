package strutil

import (
	"math"
	"sort"
	"strings"
)

// MongeElkan returns the Monge-Elkan similarity of two strings under a
// base token similarity: the average, over tokens of the first string, of
// the best match among tokens of the second. The raw measure is
// asymmetric; this implementation symmetrizes by averaging both
// directions, keeping the Func contract.
func MongeElkan(a, b string, base Func) float64 {
	ta, tb := Tokens(a), Tokens(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	return (mongeElkanDir(ta, tb, base) + mongeElkanDir(tb, ta, base)) / 2
}

func mongeElkanDir(ta, tb []string, base Func) float64 {
	sum := 0.0
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := base(x, y); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(ta))
}

// TFIDF is a token-weighting model built from a corpus of strings
// (attribute names in our use). It supports the SoftTFIDF measure of
// Cohen, Ravikumar and Fienberg — the hybrid their comparison study found
// strongest for name matching — which combines TF-IDF token weights with a
// soft (Jaro-Winkler) token-equality test.
type TFIDF struct {
	docFreq map[string]int
	numDocs int
}

// NewTFIDF builds the weighting model from the corpus of strings; each
// string is one document whose distinct tokens are counted once.
func NewTFIDF(corpus []string) *TFIDF {
	t := &TFIDF{docFreq: make(map[string]int)}
	for _, doc := range corpus {
		t.numDocs++
		seen := map[string]bool{}
		for _, tok := range Tokens(doc) {
			if !seen[tok] {
				seen[tok] = true
				t.docFreq[tok]++
			}
		}
	}
	return t
}

// Weight returns the smoothed IDF weight of a token: log(1 + N/df).
// Unseen tokens get the maximum weight log(1 + N).
func (t *TFIDF) Weight(token string) float64 {
	if t.numDocs == 0 {
		return 1
	}
	df := t.docFreq[Normalize(token)]
	if df == 0 {
		return math.Log(1 + float64(t.numDocs))
	}
	return math.Log(1 + float64(t.numDocs)/float64(df))
}

// SoftTFIDF computes the SoftTFIDF similarity of two strings: the cosine
// of their TF-IDF vectors where tokens x and y count as matching when
// base(x, y) ≥ theta, contributing weight(x)·weight(y)·base(x, y).
func (t *TFIDF) SoftTFIDF(a, b string, base Func, theta float64) float64 {
	ta, tb := Tokens(a), Tokens(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	normA := t.vectorNorm(ta)
	normB := t.vectorNorm(tb)
	if normA == 0 || normB == 0 {
		return 0
	}
	dot := 0.0
	for _, x := range ta {
		bestSim, bestTok := 0.0, ""
		for _, y := range tb {
			if s := base(x, y); s >= theta && s > bestSim {
				bestSim, bestTok = s, y
			}
		}
		if bestTok != "" {
			dot += t.Weight(x) * t.Weight(bestTok) * bestSim
		}
	}
	sim := dot / (normA * normB)
	if sim > 1 {
		sim = 1 // soft matches can overshoot the exact cosine bound
	}
	return sim
}

func (t *TFIDF) vectorNorm(tokens []string) float64 {
	counts := map[string]int{}
	for _, tok := range tokens {
		counts[tok]++
	}
	sum := 0.0
	for tok, n := range counts {
		w := float64(n) * t.Weight(tok)
		sum += w * w
	}
	return math.Sqrt(sum)
}

// Sim returns a Func closing over the model with the standard SoftTFIDF
// configuration (Jaro-Winkler base, θ = 0.9).
func (t *TFIDF) Sim() Func {
	return func(a, b string) float64 { return t.SoftTFIDF(a, b, JaroWinkler, 0.9) }
}

// TopTokens returns the n highest-IDF tokens seen in the corpus, a
// diagnostic for inspecting what the model considers distinctive.
func (t *TFIDF) TopTokens(n int) []string {
	toks := make([]string, 0, len(t.docFreq))
	for tok := range t.docFreq {
		toks = append(toks, tok)
	}
	sort.Slice(toks, func(i, j int) bool {
		wi, wj := t.Weight(toks[i]), t.Weight(toks[j])
		if wi != wj {
			return wi > wj
		}
		return toks[i] < toks[j]
	})
	if n < len(toks) {
		toks = toks[:n]
	}
	return toks
}

// FieldsOf exposes the documents' tokenization for reuse (e.g. building
// the model from attribute names plus their values).
func FieldsOf(doc string) []string { return strings.Fields(Normalize(doc)) }
