package strutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMongeElkan(t *testing.T) {
	// Identical token sets score 1.
	if s := MongeElkan("home phone", "phone home", JaroWinkler); !almostEq(s, 1) {
		t.Errorf("permuted tokens = %f", s)
	}
	// Subset relation scores above half.
	if s := MongeElkan("home phone", "phone", JaroWinkler); s < 0.5 {
		t.Errorf("subset = %f", s)
	}
	// Disjoint tokens score low.
	if s := MongeElkan("year", "price", JaroWinkler); s > 0.6 {
		t.Errorf("disjoint = %f", s)
	}
	if s := MongeElkan("", "x", JaroWinkler); s != 0 {
		t.Errorf("empty = %f", s)
	}
}

func TestMongeElkanSymmetric(t *testing.T) {
	prop := func(a, b string) bool {
		x := MongeElkan(a, b, JaroWinkler)
		y := MongeElkan(b, a, JaroWinkler)
		return math.Abs(x-y) < 1e-12 && x >= 0 && x <= 1+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func corpusModel() *TFIDF {
	return NewTFIDF([]string{
		"home phone", "office phone", "phone number", "home address",
		"office address", "name", "full name", "email address",
	})
}

func TestTFIDFWeights(t *testing.T) {
	m := corpusModel()
	// "phone" appears in 3 of 8 docs; "email" in 1: email is rarer, so it
	// weighs more.
	if m.Weight("email") <= m.Weight("phone") {
		t.Errorf("Weight(email)=%f <= Weight(phone)=%f", m.Weight("email"), m.Weight("phone"))
	}
	// Unseen tokens get the maximum weight.
	if m.Weight("zzz") < m.Weight("email") {
		t.Errorf("unseen token weight %f below rare token %f", m.Weight("zzz"), m.Weight("email"))
	}
	// Empty model is total-weight neutral.
	empty := NewTFIDF(nil)
	if empty.Weight("x") != 1 {
		t.Errorf("empty-model weight = %f", empty.Weight("x"))
	}
}

func TestSoftTFIDF(t *testing.T) {
	m := corpusModel()
	sim := m.Sim()
	if s := sim("home phone", "home phone"); !almostEq(s, 1) {
		t.Errorf("identical = %f", s)
	}
	// Typo within the soft threshold still matches strongly.
	if s := sim("home phone", "home phonee"); s < 0.9 {
		t.Errorf("soft typo = %f", s)
	}
	// Shared rare token dominates over a shared common token: both pairs
	// share one token, but the rare one is more indicative.
	rare := sim("email address", "email contact")
	common := sim("phone number", "phone x")
	if rare <= common {
		t.Errorf("rare-token pair %f <= common-token pair %f", rare, common)
	}
	if s := sim("year", "price"); s != 0 {
		t.Errorf("disjoint = %f", s)
	}
	if s := sim("", "x"); s != 0 {
		t.Errorf("empty = %f", s)
	}
}

func TestSoftTFIDFBounded(t *testing.T) {
	m := corpusModel()
	prop := func(a, b string) bool {
		s := m.SoftTFIDF(a, b, JaroWinkler, 0.9)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTopTokens(t *testing.T) {
	m := corpusModel()
	top := m.TopTokens(3)
	if len(top) != 3 {
		t.Fatalf("TopTokens = %v", top)
	}
	// The most distinctive tokens are the df=1 ones, alphabetically first.
	if m.Weight(top[0]) < m.Weight("phone") {
		t.Errorf("top token %q not high-weight", top[0])
	}
	if got := m.TopTokens(1000); len(got) != len(m.docFreq) {
		t.Errorf("TopTokens(1000) = %d tokens, want all %d", len(got), len(m.docFreq))
	}
}

func TestFieldsOf(t *testing.T) {
	got := FieldsOf("Home_Phone-No.")
	if len(got) != 3 || got[0] != "home" || got[1] != "phone" || got[2] != "no" {
		t.Errorf("FieldsOf = %v", got)
	}
}
