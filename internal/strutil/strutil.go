// Package strutil provides the string-similarity substrate used for
// attribute matching. It replaces the SecondString toolkit used in the
// paper: Jaro, Jaro-Winkler, Levenshtein, n-gram Jaccard, and a token-set
// hybrid are implemented from their published definitions.
//
// All similarity functions return values in [0, 1] where 1 means identical.
package strutil

import (
	"math"
	"strings"
	"unicode"
)

// Normalize canonicalizes an attribute name for comparison: lower-cases it,
// converts separators (underscore, dash, slash, dot) to single spaces, trims
// surrounding punctuation and collapses repeated whitespace. It keeps
// alphanumeric runes so "Phone-No." and "phone no" normalize identically.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := true // trims leading separators
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			prevSpace = false
		default:
			if !prevSpace {
				b.WriteByte(' ')
				prevSpace = true
			}
		}
	}
	return strings.TrimSpace(b.String())
}

// Tokens splits a normalized string into its whitespace-separated tokens.
func Tokens(s string) []string {
	return strings.Fields(Normalize(s))
}

// Jaro returns the Jaro similarity between two strings, following the
// standard definition: matches within a window of
// max(len1,len2)/2 - 1, transpositions counted as half-swaps.
func Jaro(s1, s2 string) float64 {
	if s1 == s2 {
		return 1
	}
	r1, r2 := []rune(s1), []rune(s2)
	n1, n2 := len(r1), len(r2)
	if n1 == 0 || n2 == 0 {
		return 0
	}
	window := max(n1, n2)/2 - 1
	if window < 0 {
		window = 0
	}
	m1 := make([]bool, n1)
	m2 := make([]bool, n2)
	matches := 0
	for i := 0; i < n1; i++ {
		lo := max(0, i-window)
		hi := min(n2-1, i+window)
		for j := lo; j <= hi; j++ {
			if !m2[j] && r1[i] == r2[j] {
				m1[i], m2[j] = true, true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	transpositions := 0
	j := 0
	for i := 0; i < n1; i++ {
		if !m1[i] {
			continue
		}
		for !m2[j] {
			j++
		}
		if r1[i] != r2[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(n1) + m/float64(n2) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard scaling
// factor p = 0.1 and a common-prefix length capped at 4. This is the
// similarity the paper uses for pairwise attribute comparison (§7.1).
func JaroWinkler(s1, s2 string) float64 {
	const (
		prefixScale = 0.1
		maxPrefix   = 4
	)
	j := Jaro(s1, s2)
	prefix := 0
	r1, r2 := []rune(s1), []rune(s2)
	for prefix < len(r1) && prefix < len(r2) && prefix < maxPrefix && r1[prefix] == r2[prefix] {
		prefix++
	}
	return j + float64(prefix)*prefixScale*(1-j)
}

// Levenshtein returns the edit distance between s1 and s2 (unit insert,
// delete, substitute costs) using a two-row dynamic program.
func Levenshtein(s1, s2 string) int {
	r1, r2 := []rune(s1), []rune(s2)
	if len(r1) == 0 {
		return len(r2)
	}
	if len(r2) == 0 {
		return len(r1)
	}
	prev := make([]int, len(r2)+1)
	cur := make([]int, len(r2)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(r1); i++ {
		cur[0] = i
		for j := 1; j <= len(r2); j++ {
			cost := 1
			if r1[i-1] == r2[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(r2)]
}

// LevenshteinSim converts edit distance to a similarity in [0,1]:
// 1 - dist/maxlen.
func LevenshteinSim(s1, s2 string) float64 {
	if s1 == s2 {
		return 1
	}
	n := max(len([]rune(s1)), len([]rune(s2)))
	if n == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(s1, s2))/float64(n)
}

// NGramJaccard returns the Jaccard coefficient of the two strings'
// character n-gram sets. Strings shorter than n are padded conceptually by
// treating the whole string as one gram.
func NGramJaccard(s1, s2 string, n int) float64 {
	if n <= 0 {
		n = 3
	}
	g1 := ngrams(s1, n)
	g2 := ngrams(s2, n)
	if len(g1) == 0 && len(g2) == 0 {
		return 1
	}
	if len(g1) == 0 || len(g2) == 0 {
		return 0
	}
	inter := 0
	for g := range g1 {
		if g2[g] {
			inter++
		}
	}
	union := len(g1) + len(g2) - inter
	return float64(inter) / float64(union)
}

func ngrams(s string, n int) map[string]bool {
	r := []rune(s)
	grams := make(map[string]bool)
	if len(r) == 0 {
		return grams
	}
	if len(r) < n {
		grams[string(r)] = true
		return grams
	}
	for i := 0; i+n <= len(r); i++ {
		grams[string(r[i:i+n])] = true
	}
	return grams
}

// Func is a pairwise string-similarity function in [0,1].
type Func func(a, b string) float64

// AttrSim is the default attribute-name similarity: names are normalized,
// then scored as the maximum of (1) Jaro-Winkler over the separator-free
// concatenations and (2) a greedy token-aligned hybrid (the SecondString
// recipe). The concatenated comparison keeps "phone" close to "phone-no";
// the hybrid keeps multi-token names comparable. Identical normalized names
// score 1 exactly.
func AttrSim(a, b string) float64 {
	ca := strings.ReplaceAll(Normalize(a), " ", "")
	cb := strings.ReplaceAll(Normalize(b), " ", "")
	if ca == "" || cb == "" {
		return 0
	}
	whole := JaroWinkler(ca, cb)
	hybrid := TokenHybrid(a, b, JaroWinkler)
	return math.Max(whole, hybrid)
}

// TokenHybrid normalizes both names, aligns their token multisets greedily
// by descending pairwise similarity under base, and averages the aligned
// scores weighted by token count. Unmatched tokens contribute zero. This
// makes "home phone" vs "phone" score high while "email address" vs
// "address" is dampened by the unmatched token.
func TokenHybrid(a, b string, base Func) float64 {
	na, nb := Normalize(a), Normalize(b)
	if na == nb {
		if na == "" {
			return 0
		}
		return 1
	}
	ta, tb := strings.Fields(na), strings.Fields(nb)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	if len(ta) == 1 && len(tb) == 1 {
		return base(ta[0], tb[0])
	}
	pairs := make([]tokenPair, 0, len(ta)*len(tb))
	for i, x := range ta {
		for j, y := range tb {
			pairs = append(pairs, tokenPair{i, j, base(x, y)})
		}
	}
	// Greedy maximum alignment: repeatedly take the best remaining pair.
	sortPairs(pairs)
	usedA := make([]bool, len(ta))
	usedB := make([]bool, len(tb))
	total := 0.0
	for _, p := range pairs {
		if usedA[p.i] || usedB[p.j] {
			continue
		}
		usedA[p.i], usedB[p.j] = true, true
		total += p.sim
	}
	// Average over the larger token count so extra tokens dilute the score.
	return total / float64(max(len(ta), len(tb)))
}

type tokenPair struct {
	i, j int
	sim  float64
}

// sortPairs sorts by descending similarity with deterministic tie-breaking
// on indices so results do not depend on iteration order. Insertion sort:
// pair lists are tiny (token counts are small).
func sortPairs(pairs []tokenPair) {
	for k := 1; k < len(pairs); k++ {
		p := pairs[k]
		m := k - 1
		for m >= 0 && less(p, pairs[m]) {
			pairs[m+1] = pairs[m]
			m--
		}
		pairs[m+1] = p
	}
}

func less(a, b tokenPair) bool {
	if a.sim != b.sim {
		return a.sim > b.sim
	}
	if a.i != b.i {
		return a.i < b.i
	}
	return a.j < b.j
}
