package strutil_test

import (
	"fmt"

	"udi/internal/strutil"
)

// Attribute-name variants of one concept score above the certain-edge
// threshold (0.87), ambiguous generics land in the uncertain band
// [0.83, 0.87), and unrelated names score low — the three similarity bands
// the mediated-schema generation of §4 is built on.
func ExampleAttrSim() {
	fmt.Printf("phone / phone-no:  %.3f\n", strutil.AttrSim("phone", "phone-no"))
	fmt.Printf("issn / issue:      %.3f\n", strutil.AttrSim("issn", "issue"))
	fmt.Printf("title / year:      %.3f\n", strutil.AttrSim("title", "year"))
	// Output:
	// phone / phone-no:  0.943
	// issn / issue:      0.848
	// title / year:      0.000
}

func ExampleJaroWinkler() {
	fmt.Printf("%.4f\n", strutil.JaroWinkler("MARTHA", "MARHTA"))
	// Output:
	// 0.9611
}

func ExampleNormalize() {
	fmt.Println(strutil.Normalize("Pages/Rec. No"))
	// Output:
	// pages rec no
}
