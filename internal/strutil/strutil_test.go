package strutil

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Phone-No.", "phone no"},
		{"  phone_no ", "phone no"},
		{"hAddr", "haddr"},
		{"E-Mail__Address", "e mail address"},
		{"pages/rec. no", "pages rec no"},
		{"", ""},
		{"---", ""},
		{"Author(s)", "author s"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokens(t *testing.T) {
	got := Tokens("Home_Phone-Number")
	want := []string{"home", "phone", "number"}
	if len(got) != len(want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokens = %v, want %v", got, want)
		}
	}
}

func TestJaroKnownValues(t *testing.T) {
	// Classic published examples.
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.944444444444},
		{"DIXON", "DICKSONX", 0.766666666667},
		{"JELLYFISH", "SMELLYFISH", 0.896296296296},
		{"abc", "abc", 1},
		{"", "abc", 0},
		{"abc", "", 0},
		{"", "", 1},
		{"a", "b", 0},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Jaro(%q,%q) = %.12f, want %.12f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.961111111111},
		{"DIXON", "DICKSONX", 0.813333333333},
		{"abc", "abc", 1},
	}
	for _, c := range cases {
		if got := JaroWinkler(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("JaroWinkler(%q,%q) = %.12f, want %.12f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerPrefixBoost(t *testing.T) {
	j := Jaro("phoneno", "phonenumber")
	jw := JaroWinkler("phoneno", "phonenumber")
	if jw <= j {
		t.Errorf("JaroWinkler (%f) should exceed Jaro (%f) for shared prefix", jw, j)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSim(t *testing.T) {
	if got := LevenshteinSim("abc", "abc"); !almostEq(got, 1) {
		t.Errorf("identical strings: got %f", got)
	}
	if got := LevenshteinSim("abcd", "wxyz"); !almostEq(got, 0) {
		t.Errorf("disjoint strings: got %f", got)
	}
	if got := LevenshteinSim("", ""); !almostEq(got, 1) {
		t.Errorf("empty strings: got %f", got)
	}
}

func TestNGramJaccard(t *testing.T) {
	if got := NGramJaccard("phone", "phone", 3); !almostEq(got, 1) {
		t.Errorf("identical: got %f", got)
	}
	if got := NGramJaccard("abc", "xyz", 3); !almostEq(got, 0) {
		t.Errorf("disjoint: got %f", got)
	}
	if got := NGramJaccard("", "", 3); !almostEq(got, 1) {
		t.Errorf("both empty: got %f", got)
	}
	if got := NGramJaccard("abc", "", 3); !almostEq(got, 0) {
		t.Errorf("one empty: got %f", got)
	}
	// n defaulting
	if got := NGramJaccard("phone", "phone", 0); !almostEq(got, 1) {
		t.Errorf("default n: got %f", got)
	}
}

func TestAttrSimSemantics(t *testing.T) {
	// Same-concept variants should score high.
	high := [][2]string{
		{"phone", "phone-no"},
		{"author", "authors"},
		{"home phone", "hphone"},
		{"year", "Year"},
	}
	for _, p := range high {
		if s := AttrSim(p[0], p[1]); s < 0.7 {
			t.Errorf("AttrSim(%q,%q) = %f, want >= 0.7", p[0], p[1], s)
		}
	}
	// Unrelated attributes should score low.
	low := [][2]string{
		{"year", "price"},
		{"make", "title"},
	}
	for _, p := range low {
		if s := AttrSim(p[0], p[1]); s > 0.6 {
			t.Errorf("AttrSim(%q,%q) = %f, want <= 0.6", p[0], p[1], s)
		}
	}
	// The email-address / address pair from §4.2 must be dampened below the
	// identical-match score by the unmatched token.
	if s := AttrSim("email address", "address"); s >= 1 {
		t.Errorf("AttrSim(email address, address) = %f, want < 1", s)
	}
}

func TestTokenHybridEmpty(t *testing.T) {
	if s := TokenHybrid("", "", JaroWinkler); s != 0 {
		t.Errorf("both empty = %f, want 0", s)
	}
	if s := TokenHybrid("a", "", JaroWinkler); s != 0 {
		t.Errorf("one empty = %f, want 0", s)
	}
}

// Property: all similarity functions are symmetric and bounded in [0,1].
func TestSimilarityProperties(t *testing.T) {
	funcs := map[string]Func{
		"Jaro":        Jaro,
		"JaroWinkler": JaroWinkler,
		"LevSim":      LevenshteinSim,
		"AttrSim":     AttrSim,
	}
	for name, f := range funcs {
		prop := func(a, b string) bool {
			x, y := f(a, b), f(b, a)
			return x >= -1e-12 && x <= 1+1e-12 && almostEq(x, y)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: identity scores 1 for non-empty strings.
func TestSimilarityIdentity(t *testing.T) {
	prop := func(a string) bool {
		if a == "" {
			return true
		}
		return almostEq(Jaro(a, a), 1) && almostEq(JaroWinkler(a, a), 1) &&
			almostEq(LevenshteinSim(a, a), 1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Levenshtein satisfies the triangle inequality and symmetry.
func TestLevenshteinMetric(t *testing.T) {
	prop := func(a, b, c string) bool {
		ab, bc, ac := Levenshtein(a, b), Levenshtein(b, c), Levenshtein(a, c)
		return ab == Levenshtein(b, a) && ac <= ab+bc
	}
	cfg := &quick.Config{MaxCount: 150}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		JaroWinkler("home phone number", "phone-no")
	}
}

func BenchmarkAttrSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		AttrSim("home phone number", "phone-no")
	}
}
