// Package keyword implements the keyword-search baselines of §7.3. Given a
// structured query Q, a keyword query Q′ is formed from the attribute names
// in Q's SELECT clause and the literal values in its WHERE clause; the
// three variants then differ in how Q′ is evaluated:
//
//   - KeywordNaive: rows containing ANY keyword of Q′;
//   - KeywordStruct: keywords that appear in a source's attribute names are
//     structure terms for that source; rows containing ANY value term;
//   - KeywordStrict: same classification; rows containing ALL value terms.
//
// Results are whole source rows (documents), mirroring what a keyword
// search engine over the table corpus would return.
package keyword

import (
	"udi/internal/answer"
	"udi/internal/sqlparse"
	"udi/internal/storage"
	"udi/internal/strutil"
)

// Variant selects one of the three keyword baselines.
type Variant int

const (
	Naive Variant = iota
	Struct
	Strict
)

func (v Variant) String() string {
	switch v {
	case Naive:
		return "KeywordNaive"
	case Struct:
		return "KeywordStruct"
	case Strict:
		return "KeywordStrict"
	}
	return "Keyword(?)"
}

// Engine evaluates keyword queries over a prebuilt index.
type Engine struct {
	index *storage.KeywordIndex
}

// NewEngine wraps a keyword index.
func NewEngine(ix *storage.KeywordIndex) *Engine { return &Engine{index: ix} }

// Keywords extracts the keyword query Q′ from a structured query:
// attribute names in the SELECT clause and values in the WHERE clause.
func Keywords(q *sqlparse.Query) []string {
	var out []string
	out = append(out, q.Select...)
	for _, p := range q.Where {
		out = append(out, p.Literal)
	}
	return out
}

// Answer runs the chosen variant and returns one instance per matching
// row. Probabilities are 1: keyword engines do not rank by mapping
// uncertainty.
func (e *Engine) Answer(q *sqlparse.Query, v Variant) []answer.Instance {
	keywords := Keywords(q)
	var refs []storage.RowRef
	switch v {
	case Naive:
		refs = e.index.RowsWithAny(keywords)
	case Struct, Strict:
		refs = e.answerClassified(keywords, v)
	}
	out := make([]answer.Instance, 0, len(refs))
	for _, ref := range refs {
		row := e.index.Row(ref)
		if row == nil {
			continue
		}
		values := make([]string, len(row))
		copy(values, row)
		out = append(out, answer.Instance{Source: ref.Source, Row: ref.Row, Values: values, Prob: 1})
	}
	return out
}

// answerClassified implements KeywordStruct/KeywordStrict: per source, a
// keyword is a structure term when it occurs in that source's attribute
// names; the remaining value terms are matched with OR (Struct) or AND
// (Strict) semantics against the source's rows.
func (e *Engine) answerClassified(keywords []string, v Variant) []storage.RowRef {
	// Candidate rows come from the union; we then re-check per source with
	// the source-specific classification.
	candidates := e.index.RowsWithAny(keywords)
	var out []storage.RowRef
	for _, ref := range candidates {
		valueTerms := e.valueTermsFor(keywords, ref.Source)
		if len(valueTerms) == 0 {
			continue // all keywords are structure terms for this source
		}
		if e.rowMatches(ref, valueTerms, v == Strict) {
			out = append(out, ref)
		}
	}
	return out
}

func (e *Engine) valueTermsFor(keywords []string, source string) []string {
	var out []string
	for _, kw := range keywords {
		structural := true
		for _, tok := range strutil.Tokens(kw) {
			if !e.index.IsAttrToken(tok, source) {
				structural = false
				break
			}
		}
		if !structural {
			out = append(out, kw)
		}
	}
	return out
}

func (e *Engine) rowMatches(ref storage.RowRef, valueTerms []string, requireAll bool) bool {
	row := e.index.Row(ref)
	if row == nil {
		return false
	}
	rowTokens := make(map[string]bool)
	for _, cell := range row {
		for _, tok := range strutil.Tokens(cell) {
			rowTokens[tok] = true
		}
	}
	termPresent := func(term string) bool {
		toks := strutil.Tokens(term)
		if len(toks) == 0 {
			return false
		}
		for _, tok := range toks {
			if !rowTokens[tok] {
				return false
			}
		}
		return true
	}
	if requireAll {
		for _, term := range valueTerms {
			if !termPresent(term) {
				return false
			}
		}
		return true
	}
	for _, term := range valueTerms {
		if termPresent(term) {
			return true
		}
	}
	return false
}
