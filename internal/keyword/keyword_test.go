package keyword

import (
	"testing"

	"udi/internal/schema"
	"udi/internal/sqlparse"
	"udi/internal/storage"
)

func fixture() *Engine {
	c, _ := schema.NewCorpus("movies", []*schema.Source{
		schema.MustNewSource("s1", []string{"title", "year"}, [][]string{
			{"Star Wars", "1977"},
			{"Alien", "1979"},
		}),
		schema.MustNewSource("s2", []string{"name", "released"}, [][]string{
			{"Star Trek", "1979"},
			{"Year One", "2009"}, // contains the token "year" as a value
		}),
	})
	return NewEngine(storage.BuildKeywordIndex(c))
}

func TestKeywords(t *testing.T) {
	q := sqlparse.MustParse("SELECT title, year FROM t WHERE director = 'Lucas'")
	kws := Keywords(q)
	want := []string{"title", "year", "Lucas"}
	if len(kws) != len(want) {
		t.Fatalf("Keywords = %v", kws)
	}
	for i := range want {
		if kws[i] != want[i] {
			t.Errorf("Keywords = %v, want %v", kws, want)
		}
	}
}

func TestNaiveMatchesAttributeNameTokens(t *testing.T) {
	e := fixture()
	// Naive treats "year" as a plain keyword: it matches the value "Year
	// One" in s2 even though the user meant the column.
	q := sqlparse.MustParse("SELECT year FROM t WHERE title = 'Star Wars'")
	got := e.Answer(q, Naive)
	// Matches: s1 row 0 (star wars), s2 row 0 (star), s2 row 1 (year one),
	// and nothing else ("wars" hits s1 row 0 already counted).
	if len(got) != 3 {
		t.Fatalf("Naive = %v", got)
	}
}

func TestStructFiltersStructureTerms(t *testing.T) {
	e := fixture()
	q := sqlparse.MustParse("SELECT year FROM t WHERE title = 'Star Wars'")
	got := e.Answer(q, Struct)
	// For s1, "year" and "title" are structure terms; value term is "Star
	// Wars" (OR over its tokens as one term). s1 row 0 matches. For s2,
	// "year" is NOT an attribute token, so it is a value term: s2 row 1
	// ("Year One") matches, and "Star Wars" partially (needs all tokens of
	// the term: "star" yes, "wars" no -> no).
	found := map[string]bool{}
	for _, inst := range got {
		found[inst.Source+":"+itoa(inst.Row)] = true
	}
	if !found["s1:0"] {
		t.Errorf("Struct missed s1 row 0: %v", got)
	}
	if !found["s2:1"] {
		t.Errorf("Struct missed s2 row 1 (year as value term): %v", got)
	}
	if found["s2:0"] {
		t.Errorf("Struct matched s2 row 0 without full term: %v", got)
	}
}

func TestStrictRequiresAllValueTerms(t *testing.T) {
	e := fixture()
	q := sqlparse.MustParse("SELECT title FROM t WHERE year = '1979'")
	// s1: "title" and "year" structural; value term "1979": rows with 1979
	// -> s1 row 1 (Alien). s2: "title" and "year" are value terms along
	// with "1979": Strict needs all of them in one row -> none.
	got := e.Answer(q, Strict)
	if len(got) != 1 || got[0].Source != "s1" || got[0].Row != 1 {
		t.Errorf("Strict = %v", got)
	}
}

func TestStructAllStructural(t *testing.T) {
	e := fixture()
	// Query with only attribute names: for s1 every keyword is structural,
	// so s1 yields nothing; s2 treats them as value terms.
	q := sqlparse.MustParse("SELECT title, year FROM t")
	got := e.Answer(q, Struct)
	for _, inst := range got {
		if inst.Source == "s1" {
			t.Errorf("s1 matched with all-structural keywords: %v", inst)
		}
	}
}

func TestVariantString(t *testing.T) {
	if Naive.String() != "KeywordNaive" || Struct.String() != "KeywordStruct" || Strict.String() != "KeywordStrict" {
		t.Error("Variant.String wrong")
	}
}

func itoa(i int) string {
	return string(rune('0' + i))
}
