package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"udi/internal/httpapi"
)

// countingServer answers with a scripted sequence of handlers, one per
// request, repeating the last one once the script runs out.
func countingServer(t *testing.T, script ...http.HandlerFunc) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var n atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(n.Add(1)) - 1
		if i >= len(script) {
			i = len(script) - 1
		}
		script[i](w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &n
}

func ok(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"ok":true}`))
}

func envelope(status int, code, msg string) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		httpapi.WriteError(w, status, code, msg, map[string]any{"k": "v"})
	}
}

// TestEnvelopeDecodesToStatusError: a server error envelope round-trips
// into the same *httpapi.StatusError the handler rendered — code,
// message, details and HTTP status all intact.
func TestEnvelopeDecodesToStatusError(t *testing.T) {
	srv, _ := countingServer(t, envelope(http.StatusNotFound, httpapi.CodeUnknownSource, "no such source"))
	c := New(srv.URL, Options{Retries: -1})
	err := c.Do(context.Background(), http.MethodGet, "/v1/x", nil, nil, true)
	var se *httpapi.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error %v (%T) is not a StatusError", err, err)
	}
	if se.Status != http.StatusNotFound || se.Code != httpapi.CodeUnknownSource ||
		se.Message != "no such source" || se.Details["k"] != "v" {
		t.Fatalf("decoded envelope = %+v", se)
	}
}

// TestBareErrorBodyStillTyped: a non-envelope error body (a proxy's
// bare 502) still yields a StatusError built from the status line.
func TestBareErrorBodyStillTyped(t *testing.T) {
	srv, _ := countingServer(t, func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	})
	c := New(srv.URL, Options{Retries: -1})
	err := c.Do(context.Background(), http.MethodGet, "/v1/x", nil, nil, true)
	var se *httpapi.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a StatusError", err)
	}
	if se.Status != http.StatusBadGateway || se.Code != httpapi.CodeInternal {
		t.Fatalf("bare-body error = %+v, want 502 %s", se, httpapi.CodeInternal)
	}
}

// TestIdempotentRetriesServerErrors: 5xx answers on an idempotent
// request are retried up to the budget, and a success mid-budget wins.
func TestIdempotentRetriesServerErrors(t *testing.T) {
	srv, n := countingServer(t,
		envelope(http.StatusServiceUnavailable, httpapi.CodeNotReady, "warming up"),
		envelope(http.StatusServiceUnavailable, httpapi.CodeNotReady, "warming up"),
		ok,
	)
	c := New(srv.URL, Options{Retries: 2, RetryBackoff: time.Millisecond})
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.Do(context.Background(), http.MethodGet, "/v1/x", nil, &out, true); err != nil {
		t.Fatalf("expected success on third attempt: %v", err)
	}
	if !out.OK || n.Load() != 3 {
		t.Fatalf("out=%+v attempts=%d, want ok after 3", out, n.Load())
	}
}

// TestClientErrorsNeverRetried: a 4xx (other than 429) is the server's
// final word — exactly one attempt even on an idempotent request.
func TestClientErrorsNeverRetried(t *testing.T) {
	srv, n := countingServer(t, envelope(http.StatusBadRequest, httpapi.CodeBadQuery, "no"))
	c := New(srv.URL, Options{Retries: 3, RetryBackoff: time.Millisecond})
	err := c.Do(context.Background(), http.MethodGet, "/v1/x", nil, nil, true)
	if err == nil || n.Load() != 1 {
		t.Fatalf("err=%v attempts=%d, want one failed attempt", err, n.Load())
	}
}

// TestNonIdempotentNeverRetried: a mutation gets exactly one attempt
// even against a 5xx — a lost response must not double-apply.
func TestNonIdempotentNeverRetried(t *testing.T) {
	srv, n := countingServer(t, envelope(http.StatusServiceUnavailable, httpapi.CodeNotReady, "down"))
	c := New(srv.URL, Options{Retries: 3, RetryBackoff: time.Millisecond})
	err := c.Do(context.Background(), http.MethodPost, "/v1/x", map[string]int{"a": 1}, nil, false)
	if err == nil || n.Load() != 1 {
		t.Fatalf("err=%v attempts=%d, want exactly one attempt", err, n.Load())
	}
}

// TestRetryAfterHonored: a 429 carrying Retry-After delays the retry by
// at least that long instead of the default backoff.
func TestRetryAfterHonored(t *testing.T) {
	srv, n := countingServer(t,
		func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Retry-After", "1")
			httpapi.WriteError(w, http.StatusTooManyRequests, "busy", "try later", nil)
		},
		ok,
	)
	c := New(srv.URL, Options{Retries: 1, RetryBackoff: time.Millisecond})
	start := time.Now()
	if err := c.Do(context.Background(), http.MethodGet, "/v1/x", nil, nil, true); err != nil {
		t.Fatalf("expected success after Retry-After pause: %v", err)
	}
	if d := time.Since(start); d < time.Second {
		t.Fatalf("retried after %v, want >= 1s (Retry-After)", d)
	}
	if n.Load() != 2 {
		t.Fatalf("attempts = %d, want 2", n.Load())
	}
}

// TestTransportFailureWrapsErrTransport: a refused connection is an
// ErrTransport, never a StatusError.
func TestTransportFailureWrapsErrTransport(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(ok))
	srv.Close() // now nothing listens there
	c := New(srv.URL, Options{Retries: -1})
	err := c.Do(context.Background(), http.MethodGet, "/v1/x", nil, nil, true)
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport", err)
	}
	var se *httpapi.StatusError
	if errors.As(err, &se) {
		t.Fatalf("transport failure decoded as StatusError %+v", se)
	}
}

// TestPerAttemptTimeoutIsRetryableTransport: the per-attempt Timeout
// expiring is a slow-server fault (retryable ErrTransport), not the
// caller's own deadline — a later fast answer succeeds.
func TestPerAttemptTimeoutIsRetryableTransport(t *testing.T) {
	srv, n := countingServer(t,
		func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(300 * time.Millisecond)
			ok(w, r)
		},
		ok,
	)
	c := New(srv.URL, Options{Timeout: 50 * time.Millisecond, Retries: 1, RetryBackoff: time.Millisecond})
	if err := c.Do(context.Background(), http.MethodGet, "/v1/x", nil, nil, true); err != nil {
		t.Fatalf("expected retry to beat the slow first attempt: %v", err)
	}
	if n.Load() != 2 {
		t.Fatalf("attempts = %d, want 2", n.Load())
	}
}

// TestCallerContextExpiryPassesThrough: the caller's own context
// expiring surfaces unchanged (so handlers map it to timeout, not 503)
// and is never retried.
func TestCallerContextExpiryPassesThrough(t *testing.T) {
	srv, n := countingServer(t, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		ok(w, r)
	})
	c := New(srv.URL, Options{Retries: 3, RetryBackoff: time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := c.Do(ctx, http.MethodGet, "/v1/x", nil, nil, true)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if errors.Is(err, ErrTransport) {
		t.Fatal("caller deadline reported as transport failure")
	}
	if n.Load() != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry after caller deadline)", n.Load())
	}
}

// TestRetryPauseCapped: the exponential backoff never overflows into a
// negative (immediate) pause and never exceeds maxRetryPause, for any
// attempt count a long retry budget can reach.
func TestRetryPauseCapped(t *testing.T) {
	c := New("http://unused", Options{RetryBackoff: 50 * time.Millisecond})
	if d := c.retryPause(nil, 1); d != 50*time.Millisecond {
		t.Fatalf("attempt 1 pause = %v, want base 50ms", d)
	}
	if d := c.retryPause(nil, 2); d != 100*time.Millisecond {
		t.Fatalf("attempt 2 pause = %v, want doubled 100ms", d)
	}
	for attempt := 1; attempt <= 512; attempt++ {
		d := c.retryPause(nil, attempt)
		if d <= 0 {
			t.Fatalf("attempt %d pause = %v (overflowed)", attempt, d)
		}
		if d > maxRetryPause {
			t.Fatalf("attempt %d pause = %v, want <= %v", attempt, d, maxRetryPause)
		}
	}
	// 64 doublings of 50ms overflow int64 without the cap; the cap wins.
	if d := c.retryPause(nil, 65); d != maxRetryPause {
		t.Fatalf("attempt 65 pause = %v, want cap %v", d, maxRetryPause)
	}
}

// TestRetryPauseHonorsRetryAfterOverCap: an explicit server hint wins
// over the computed backoff even at high attempt counts.
func TestRetryPauseHonorsRetryAfterOverCap(t *testing.T) {
	c := New("http://unused", Options{RetryBackoff: 50 * time.Millisecond})
	se := &httpapi.StatusError{Status: http.StatusTooManyRequests, Code: "busy", RetryAfterSec: 3}
	if d := c.retryPause(se, 100); d != 3*time.Second {
		t.Fatalf("Retry-After pause = %v, want 3s", d)
	}
}

// TestPauseReturnsPromptlyOnCancel: cancelling the context mid-pause
// returns immediately with the context error (and the stopped timer
// does not linger until the full backoff elapses).
func TestPauseReturnsPromptlyOnCancel(t *testing.T) {
	c := New("http://unused", Options{RetryBackoff: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := c.pause(ctx, nil, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pause err = %v, want Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("pause took %v after cancel, want prompt return", d)
	}
}

// TestUndecodableSuccessBodyIsTransport: a 2xx whose body does not
// decode is a transport-class failure (truncated write), not a silent
// zero value.
func TestUndecodableSuccessBodyIsTransport(t *testing.T) {
	srv, _ := countingServer(t, func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{"ok":tru`))
	})
	c := New(srv.URL, Options{Retries: -1})
	var out struct {
		OK bool `json:"ok"`
	}
	err := c.Do(context.Background(), http.MethodGet, "/v1/x", nil, &out, true)
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport", err)
	}
}
