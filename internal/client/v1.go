package client

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"udi/internal/httpapi"
)

// The typed /v1 surface. Request and response shapes mirror the wire
// format the handlers in internal/httpapi serve; the shared status
// structs (DurabilityStatus, ReplicationStatus) are the httpapi types
// themselves so the two sides cannot drift.

// Health is the GET /v1/healthz response.
type Health struct {
	Status  string `json:"status"`
	Sources int    `json:"sources"`
	Epoch   uint64 `json:"epoch"`
}

// Schema is the GET /v1/schema response.
type Schema struct {
	Schemas []SchemaEntry `json:"schemas"`
	Target  [][]string    `json:"consolidated"`
	Epoch   uint64        `json:"epoch"`
	Epochs  []uint64      `json:"epochs,omitempty"`
	Shards  int           `json:"shards,omitempty"`

	CreatedAt        time.Time `json:"created_at"`
	StalenessSeconds float64   `json:"staleness_seconds"`
	Committing       bool      `json:"committing"`

	Durability  *httpapi.DurabilityStatus  `json:"durability,omitempty"`
	Replication *httpapi.ReplicationStatus `json:"replication,omitempty"`
}

// SchemaEntry is one mediated schema with its probability.
type SchemaEntry struct {
	Prob     float64    `json:"prob"`
	Clusters [][]string `json:"clusters"`
}

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	Query     string `json:"query"`
	Approach  string `json:"approach,omitempty"`
	Semantics string `json:"semantics,omitempty"`
	Top       int    `json:"top,omitempty"`
}

// QueryAnswer is one ranked answer.
type QueryAnswer struct {
	Values []string `json:"values"`
	Prob   float64  `json:"prob"`
}

// QueryResponse is the POST /v1/query response.
type QueryResponse struct {
	Answers     []QueryAnswer `json:"answers"`
	Distinct    int           `json:"distinct"`
	Occurrences int           `json:"occurrences"`
	Epoch       uint64        `json:"epoch"`
}

// Contribution is one source's provenance entry in an explain response.
type Contribution struct {
	Source    string         `json:"source"`
	SchemaIdx int            `json:"schema"`
	MedToSrc  map[int]string `json:"mapping"`
	Rows      []int          `json:"rows"`
	Mass      float64        `json:"mass"`
}

// ExplainResponse is the POST /v1/explain response.
type ExplainResponse struct {
	Contributions []Contribution `json:"contributions"`
	Epoch         uint64         `json:"epoch"`
}

// Candidate is one feedback candidate as served by GET /v1/candidates.
type Candidate struct {
	Source      string   `json:"source"`
	SrcAttr     string   `json:"attr"`
	Cluster     []string `json:"cluster"`
	MedName     string   `json:"med_name"`
	Marginal    float64  `json:"marginal"`
	Uncertainty float64  `json:"uncertainty"`
}

// CandidatesResponse is the GET /v1/candidates response.
type CandidatesResponse struct {
	Candidates []Candidate `json:"candidates"`
	Epoch      uint64      `json:"epoch"`
}

// FeedbackRequest is the POST /v1/feedback body.
type FeedbackRequest struct {
	Source    string `json:"source"`
	SrcAttr   string `json:"attr"`
	MedName   string `json:"med_name"`
	Confirmed bool   `json:"confirmed"`
}

// FeedbackResponse is the POST /v1/feedback response.
type FeedbackResponse struct {
	Status string `json:"status"`
	Epoch  uint64 `json:"epoch"`
}

// SourcePayload is one source in a POST /v1/sources batch.
type SourcePayload struct {
	Name  string     `json:"name"`
	Attrs []string   `json:"attrs"`
	Rows  [][]string `json:"rows"`
}

// AddSourcesResponse is the POST /v1/sources response.
type AddSourcesResponse struct {
	Status  string `json:"status"`
	Sources int    `json:"sources"`
	Fast    bool   `json:"fast"`
	Epoch   uint64 `json:"epoch"`
}

// RemoveSourceResponse is the DELETE /v1/sources/{name} response.
type RemoveSourceResponse struct {
	Status string `json:"status"`
	Source string `json:"source"`
	Fast   bool   `json:"fast"`
	Epoch  uint64 `json:"epoch"`
}

// Healthz fetches the server's health summary.
func (c *Client) Healthz(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.Get(ctx, "/v1/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Schema fetches the mediated schema, epochs, and topology status.
func (c *Client) Schema(ctx context.Context) (*Schema, error) {
	var out Schema
	if err := c.Get(ctx, "/v1/schema", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Query answers a query. The POST is an idempotent read — it is retried
// on transport failure.
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	var out QueryResponse
	if err := c.Do(ctx, http.MethodPost, "/v1/query", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Explain fetches the provenance behind one answer (idempotent read).
func (c *Client) Explain(ctx context.Context, query string, values []string) (*ExplainResponse, error) {
	var out ExplainResponse
	body := map[string]any{"query": query, "values": values}
	if err := c.Do(ctx, http.MethodPost, "/v1/explain", body, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Candidates fetches the top feedback candidates (idempotent read).
func (c *Client) Candidates(ctx context.Context, limit int) (*CandidatesResponse, error) {
	var out CandidatesResponse
	path := "/v1/candidates"
	if limit > 0 {
		path = fmt.Sprintf("/v1/candidates?limit=%d", limit)
	}
	if err := c.Get(ctx, path, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Feedback submits one confirm/reject decision. Mutations are never
// retried: a lost response leaves the outcome unknown, and feedback is
// not idempotent.
func (c *Client) Feedback(ctx context.Context, req FeedbackRequest) (*FeedbackResponse, error) {
	var out FeedbackResponse
	if err := c.Do(ctx, http.MethodPost, "/v1/feedback", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// AddSources submits a batch of sources for one group commit (never
// retried).
func (c *Client) AddSources(ctx context.Context, sources []SourcePayload) (*AddSourcesResponse, error) {
	var out AddSourcesResponse
	body := map[string]any{"sources": sources}
	if err := c.Do(ctx, http.MethodPost, "/v1/sources", body, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// RemoveSource drops one source by name (never retried).
func (c *Client) RemoveSource(ctx context.Context, name string) (*RemoveSourceResponse, error) {
	var out RemoveSourceResponse
	path := "/v1/sources/" + url.PathEscape(name)
	if err := c.Do(ctx, http.MethodDelete, path, nil, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}
