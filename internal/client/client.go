// Package client is the typed Go client for the /v1 API. Everything
// that talks to a udiserver over HTTP goes through it — the networked
// coordinator's shard stubs, the replica's WAL follower, and `udi
// -remote` — so error-envelope decoding, deadlines, retry policy, and
// Retry-After handling live in exactly one place.
//
// Server-reported errors come back as *httpapi.StatusError, the same
// type the handlers render: a proxying layer (the coordinator) can hand
// the decoded error straight back to its own handler and the end client
// receives a byte-identical envelope. Transport-level failures (refused
// connections, timeouts, truncated bodies) come back as ordinary errors
// wrapping ErrTransport, so callers can distinguish "the server said
// no" from "the server never answered" — the distinction the
// coordinator's shard_unavailable mapping and the no-retry-on-mutation
// rule are built on.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"udi/internal/httpapi"
)

// ErrTransport marks failures where no well-formed server response
// arrived: connection errors, request timeouts, truncated or undecodable
// bodies. A *httpapi.StatusError never wraps it.
var ErrTransport = errors.New("client: transport failure")

// Options configures a Client. The zero value uses a pooled transport,
// no per-request timeout beyond the caller's context, and 2 retries for
// idempotent requests.
type Options struct {
	// HTTPClient overrides the underlying client (tests, fault proxies).
	// Nil builds one with a pooled transport.
	HTTPClient *http.Client
	// Timeout bounds each attempt (not the whole retry loop). Zero means
	// only the caller's context bounds the request.
	Timeout time.Duration
	// Retries is the number of re-attempts after the first failure for
	// idempotent requests (negative = none, zero = DefaultRetries).
	// Non-idempotent requests are never retried: a lost response leaves
	// the outcome unknown, and re-sending could double-apply.
	Retries int
	// RetryBackoff is the base pause between attempts when the server
	// did not send Retry-After (default 50ms, doubled per attempt).
	RetryBackoff time.Duration
}

// DefaultRetries is the idempotent re-attempt budget when Options
// leaves Retries zero.
const DefaultRetries = 2

// Client is a typed /v1 API client bound to one base URL. It is safe
// for concurrent use; connections are pooled per Client.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	retries int
	backoff time.Duration
}

// New builds a client for the server at base (e.g. "http://host:8080"),
// with or without a trailing slash.
func New(base string, opts Options) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	retries := opts.Retries
	if retries == 0 {
		retries = DefaultRetries
	}
	if retries < 0 {
		retries = 0
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	return &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      hc,
		timeout: opts.Timeout,
		retries: retries,
		backoff: backoff,
	}
}

// Base returns the server address this client is bound to.
func (c *Client) Base() string { return c.base }

// Do performs one JSON request against path (e.g. "/v1/query"). A
// non-nil in is sent as the JSON body; a non-nil out receives the
// decoded 2xx response. Idempotent requests are retried (bounded by
// Options.Retries) on transport failures and on 429/5xx responses,
// honoring Retry-After; non-idempotent requests get exactly one
// attempt. Error responses decode into *httpapi.StatusError.
func (c *Client) Do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	attempts := 1
	if idempotent {
		attempts += c.retries
	}
	var last error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.pause(ctx, last, attempt); err != nil {
				return err
			}
		}
		err := c.once(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		last = err
		if !retryable(err) {
			return err
		}
	}
	return last
}

// Get performs an idempotent GET.
func (c *Client) Get(ctx context.Context, path string, out any) error {
	return c.Do(ctx, http.MethodGet, path, nil, out, true)
}

// DoRaw performs one request with a preassembled body, explicit content
// type, and extra headers — the coordinator's snapshot-shipping path.
// Error handling and the retry policy match Do.
func (c *Client) DoRaw(ctx context.Context, method, path, contentType string, body []byte, hdr map[string]string, out any, idempotent bool) error {
	attempts := 1
	if idempotent {
		attempts += c.retries
	}
	var last error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.pause(ctx, last, attempt); err != nil {
				return err
			}
		}
		err := c.attempt(ctx, method, path, contentType, body, hdr, out, nil)
		if err == nil {
			return nil
		}
		last = err
		if !retryable(err) {
			return err
		}
	}
	return last
}

// GetBinary performs an idempotent GET and returns the raw 2xx body with
// its response headers — the snapshot-bootstrap and WAL-tail paths, whose
// payloads are CRC-framed bytes rather than JSON.
func (c *Client) GetBinary(ctx context.Context, path string) ([]byte, http.Header, error) {
	var raw rawResult
	attempts := 1 + c.retries
	var last error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.pause(ctx, last, attempt); err != nil {
				return nil, nil, err
			}
		}
		err := c.attempt(ctx, http.MethodGet, path, "", nil, nil, nil, &raw)
		if err == nil {
			return raw.body, raw.header, nil
		}
		last = err
		if !retryable(err) {
			return nil, nil, err
		}
	}
	return nil, nil, last
}

// rawResult captures a binary response for GetBinary.
type rawResult struct {
	body   []byte
	header http.Header
}

// once is a single JSON request attempt.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	contentType := ""
	if body != nil {
		contentType = "application/json"
	}
	return c.attempt(ctx, method, path, contentType, body, nil, out, nil)
}

// attempt is a single wire attempt shared by every entry point.
func (c *Client) attempt(ctx context.Context, method, path, contentType string, body []byte, hdr map[string]string, out any, raw *rawResult) error {
	// caller is the pre-timeout context: only its expiry is the caller's
	// own deadline. The per-attempt timeout expiring is a server fault
	// (a slow shard), reported as a retryable transport failure.
	caller := ctx
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrTransport, err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// The caller's own context expiring is not a server fault; report
		// it as-is so handlers map it to timeout/canceled, not 503.
		if ctxErr := caller.Err(); ctxErr != nil {
			return ctxErr
		}
		return fmt.Errorf("%w: %s %s: %v", ErrTransport, method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctxErr := caller.Err(); ctxErr != nil {
			return ctxErr
		}
		return fmt.Errorf("%w: %s %s: read body: %v", ErrTransport, method, path, err)
	}
	if resp.StatusCode >= 400 {
		return decodeError(resp, data)
	}
	if raw != nil {
		raw.body = data
		raw.header = resp.Header
		return nil
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("%w: %s %s: decode response: %v", ErrTransport, method, path, err)
		}
	}
	return nil
}

// decodeError turns an error response into *httpapi.StatusError. A body
// that does not carry the envelope (a proxy's bare 502, a truncated
// write) still produces a StatusError with the HTTP status and code
// "internal" — the status line itself is trustworthy.
func decodeError(resp *http.Response, data []byte) error {
	var env struct {
		Error struct {
			Code    string         `json:"code"`
			Message string         `json:"message"`
			Details map[string]any `json:"details,omitempty"`
		} `json:"error"`
	}
	se := &httpapi.StatusError{Status: resp.StatusCode, Code: httpapi.CodeInternal}
	if err := json.Unmarshal(data, &env); err == nil && env.Error.Code != "" {
		se.Code = env.Error.Code
		se.Message = env.Error.Message
		se.Details = env.Error.Details
	} else {
		se.Message = http.StatusText(resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if sec, err := strconv.Atoi(ra); err == nil && sec > 0 {
			se.RetryAfterSec = sec
		}
	}
	return se
}

// retryable reports whether a failed idempotent attempt is worth
// re-sending: transport failures and 429/5xx server states, but never
// client errors (4xx other than 429) or context expiry.
func retryable(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, ErrTransport) {
		return true
	}
	var se *httpapi.StatusError
	if errors.As(err, &se) {
		return se.Status == http.StatusTooManyRequests || se.Status >= 500
	}
	return false
}

// maxRetryPause caps the exponential backoff between attempts. Without
// a cap the doubling shift overflows time.Duration once attempt counts
// grow (a negative pause fires immediately, turning backoff into a hot
// retry loop).
const maxRetryPause = 30 * time.Second

// retryPause computes the wait before one retry: the server's
// Retry-After hint when the last failure carried one, else exponential
// backoff from the base, capped at maxRetryPause.
func (c *Client) retryPause(last error, attempt int) time.Duration {
	var se *httpapi.StatusError
	if errors.As(last, &se) && se.RetryAfterSec > 0 {
		return time.Duration(se.RetryAfterSec) * time.Second
	}
	d := c.backoff
	for i := 1; i < attempt && d < maxRetryPause; i++ {
		d <<= 1
	}
	if d <= 0 || d > maxRetryPause {
		return maxRetryPause
	}
	return d
}

// pause waits retryPause before a retry. The timer is stopped when the
// context wins the select, so an abandoned retry loop does not pin a
// timer until it fires.
func (c *Client) pause(ctx context.Context, last error, attempt int) error {
	t := time.NewTimer(c.retryPause(last, attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
