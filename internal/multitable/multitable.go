// Package multitable extends the system toward multi-table sources, the
// first item of the paper's future work (§9: "we plan to extend our
// techniques to dealing with multiple-table sources"). A Site is a source
// holding several tables; Flatten turns a set of sites into the
// single-table corpus the pipeline consumes (each table becomes a source
// named "site/table"), and CombineBySite recombines query answers under a
// site-aware independence assumption: tables of one site share provenance,
// so their evidence for the same answer must not compound the way
// independent sources' evidence does (§2 assumes independence *between*
// sources and explicitly scopes out derived sources).
package multitable

import (
	"fmt"
	"sort"
	"strings"

	"udi/internal/answer"
	"udi/internal/schema"
)

// Site is one multi-table data source.
type Site struct {
	Name   string
	Tables []*schema.Source
}

// Separator joins site and table names in flattened source names. It is a
// rune that cannot appear in generated names.
const Separator = "/"

// Flatten converts sites into a single-table corpus for the standard
// pipeline. Each table becomes a source named "<site>/<table>"; the
// returned map recovers the owning site of every flattened source.
func Flatten(domain string, sites []*Site) (*schema.Corpus, map[string]string, error) {
	var sources []*schema.Source
	siteOf := make(map[string]string)
	seenSite := make(map[string]bool)
	for _, site := range sites {
		if site.Name == "" {
			return nil, nil, fmt.Errorf("multitable: site with empty name")
		}
		if strings.Contains(site.Name, Separator) {
			return nil, nil, fmt.Errorf("multitable: site name %q contains %q", site.Name, Separator)
		}
		if seenSite[site.Name] {
			return nil, nil, fmt.Errorf("multitable: duplicate site %q", site.Name)
		}
		seenSite[site.Name] = true
		if len(site.Tables) == 0 {
			return nil, nil, fmt.Errorf("multitable: site %q has no tables", site.Name)
		}
		seenTable := make(map[string]bool)
		for _, tbl := range site.Tables {
			if seenTable[tbl.Name] {
				return nil, nil, fmt.Errorf("multitable: site %q has duplicate table %q", site.Name, tbl.Name)
			}
			seenTable[tbl.Name] = true
			name := site.Name + Separator + tbl.Name
			src, err := schema.NewSource(name, tbl.Attrs, tbl.Rows)
			if err != nil {
				return nil, nil, fmt.Errorf("multitable: %w", err)
			}
			sources = append(sources, src)
			siteOf[name] = site.Name
		}
	}
	corpus, err := schema.NewCorpus(domain, sources)
	if err != nil {
		return nil, nil, err
	}
	return corpus, siteOf, nil
}

// SiteOfSource extracts the site name from a flattened source name,
// falling back to the whole name for sources that were never part of a
// site.
func SiteOfSource(source string) string {
	if i := strings.Index(source, Separator); i >= 0 {
		return source[:i]
	}
	return source
}

// CombineBySite recombines a result set's per-source tuple probabilities
// under the site-aware model: within one site the tables are treated as
// fully dependent (the site asserts the answer with the strongest of its
// tables' probabilities — a conservative choice that never double-counts
// shared provenance), and across sites the usual independent disjunction
// applies. siteOf maps flattened source names to sites; absent sources
// count as their own site.
func CombineBySite(rs *answer.ResultSet, siteOf map[string]string) []answer.Answer {
	site := func(source string) string {
		if s, ok := siteOf[source]; ok {
			return s
		}
		return SiteOfSource(source)
	}
	// siteProb[tupleKey][site] = max per-table probability.
	siteProb := make(map[string]map[string]float64)
	var order []string
	for _, sp := range rs.PerSource {
		s := site(sp.Source)
		for tk, p := range sp.Probs {
			if p > 1 {
				p = 1
			}
			m, ok := siteProb[tk]
			if !ok {
				m = make(map[string]float64)
				siteProb[tk] = m
				order = append(order, tk)
			}
			if p > m[s] {
				m[s] = p
			}
		}
	}
	out := make([]answer.Answer, 0, len(order))
	for _, tk := range order {
		q := 1.0
		for _, p := range siteProb[tk] {
			q *= 1 - p
		}
		values := strings.Split(tk, "\x1f")
		if tk == "" {
			values = []string{}
		}
		out = append(out, answer.Answer{Values: values, Prob: 1 - q})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return answer.TupleKey(out[i].Values) < answer.TupleKey(out[j].Values)
	})
	return out
}
