package multitable

import (
	"math"
	"strings"
	"testing"

	"udi/internal/answer"
	"udi/internal/core"
	"udi/internal/schema"
	"udi/internal/sqlparse"
)

func site(name string, tables ...*schema.Source) *Site {
	return &Site{Name: name, Tables: tables}
}

func table(name string, attrs []string, rows [][]string) *schema.Source {
	return schema.MustNewSource(name, attrs, rows)
}

func TestFlatten(t *testing.T) {
	sites := []*Site{
		site("acme",
			table("staff", []string{"name", "phone"}, [][]string{{"Alice", "111"}}),
			table("board", []string{"name", "phone"}, [][]string{{"Bob", "222"}})),
		site("globex",
			table("people", []string{"names", "phone-no"}, [][]string{{"Carol", "333"}})),
	}
	corpus, siteOf, err := Flatten("people", sites)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Sources) != 3 {
		t.Fatalf("sources = %d", len(corpus.Sources))
	}
	if corpus.Sources[0].Name != "acme/staff" || siteOf["acme/staff"] != "acme" {
		t.Errorf("flattened name/site wrong: %q %q", corpus.Sources[0].Name, siteOf["acme/staff"])
	}
	if SiteOfSource("acme/staff") != "acme" || SiteOfSource("plain") != "plain" {
		t.Error("SiteOfSource wrong")
	}
}

func TestFlattenErrors(t *testing.T) {
	tbl := table("t", []string{"a"}, nil)
	cases := [][]*Site{
		{site("", tbl)},
		{site("a/b", tbl)},
		{site("x", tbl), site("x", tbl)},
		{site("x")},
		{site("x", tbl, tbl)},
	}
	for i, sites := range cases {
		if _, _, err := Flatten("d", sites); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// Two tables of one site asserting the same answer must not compound,
// while two independent sites must.
func TestCombineBySite(t *testing.T) {
	rs := &answer.ResultSet{
		PerSource: []answer.SourceTupleProbs{
			{Source: "acme/staff", Probs: map[string]float64{"Alice": 0.6}},
			{Source: "acme/board", Probs: map[string]float64{"Alice": 0.5}},
			{Source: "globex/people", Probs: map[string]float64{"Alice": 0.5, "Carol": 0.8}},
		},
	}
	combined := CombineBySite(rs, map[string]string{
		"acme/staff": "acme", "acme/board": "acme", "globex/people": "globex",
	})
	probs := map[string]float64{}
	for _, a := range combined {
		probs[strings.Join(a.Values, "|")] = a.Prob
	}
	// acme contributes max(0.6, 0.5) = 0.6; globex 0.5; independent
	// disjunction across sites: 1 - 0.4*0.5 = 0.8.
	if math.Abs(probs["Alice"]-0.8) > 1e-9 {
		t.Errorf("Alice = %f, want 0.8", probs["Alice"])
	}
	if math.Abs(probs["Carol"]-0.8) > 1e-9 {
		t.Errorf("Carol = %f, want 0.8", probs["Carol"])
	}
	// Fully independent treatment would have given Alice
	// 1 - 0.4*0.5*0.5 = 0.9 — the site model is strictly more conservative.
	if probs["Alice"] >= 0.9 {
		t.Errorf("site dependence not applied: %f", probs["Alice"])
	}
}

func TestCombineBySiteFallback(t *testing.T) {
	rs := &answer.ResultSet{
		PerSource: []answer.SourceTupleProbs{
			{Source: "lonely", Probs: map[string]float64{"X": 0.7}},
			{Source: "solo/t", Probs: map[string]float64{"X": 0.5}},
		},
	}
	combined := CombineBySite(rs, nil) // no map: infer from names
	if len(combined) != 1 {
		t.Fatalf("combined = %v", combined)
	}
	want := 1 - 0.3*0.5
	if math.Abs(combined[0].Prob-want) > 1e-9 {
		t.Errorf("prob = %f, want %f", combined[0].Prob, want)
	}
}

// End to end: flatten sites, run the full pipeline, recombine by site, and
// check the site-aware probability is bounded by the independent one.
func TestEndToEndSites(t *testing.T) {
	sites := []*Site{
		site("a",
			table("t1", []string{"name", "phone"}, [][]string{{"Alice", "111"}, {"Bob", "222"}}),
			table("t2", []string{"name", "phone-no"}, [][]string{{"Alice", "111"}})),
		site("b",
			table("t1", []string{"names", "phone"}, [][]string{{"Alice", "111"}})),
	}
	corpus, siteOf, err := Flatten("people", sites)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Setup(corpus, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sys.QueryParsed(sqlparse.MustParse("SELECT name, phone FROM People"))
	if err != nil {
		t.Fatal(err)
	}
	independent := map[string]float64{}
	for _, a := range rs.Ranked {
		independent[strings.Join(a.Values, "|")] = a.Prob
	}
	for _, a := range CombineBySite(rs, siteOf) {
		k := strings.Join(a.Values, "|")
		if a.Prob > independent[k]+1e-9 {
			t.Errorf("site-aware prob %f exceeds independent %f for %s", a.Prob, independent[k], k)
		}
		if a.Prob <= 0 || a.Prob > 1 {
			t.Errorf("prob %f out of range", a.Prob)
		}
	}
}
