package pmapping

import (
	"fmt"

	"udi/internal/maxent"
)

// Condition incorporates user feedback about one correspondence into the
// p-mapping, the pay-as-you-go improvement loop the paper defers to future
// work (§9, citing Jeffery et al.): confirming a correspondence pins its
// probability to 1, rejecting pins it to 0, and the distribution over
// mappings is recomputed as the maximum-entropy distribution consistent
// with the updated constraints.
//
// Confirming (srcAttr → medIdx) removes every correspondence that
// conflicts with it under the one-to-one requirement (same source
// attribute or same mediated attribute); if the correspondence was not
// present (e.g. it fell below the similarity threshold at setup time) it
// is injected. Rejecting simply removes the correspondence. Groups
// touching the affected attributes are merged and re-solved; the rest of
// the p-mapping is untouched.
func (pm *PMapping) Condition(srcAttr string, medIdx int, confirmed bool, cfg Config) error {
	cfg = cfg.withDefaults()

	// Collect the groups touching srcAttr or medIdx; they merge because
	// the feedback correlates them.
	var merged []Corr
	var kept []Group
	touched := false
	for _, g := range pm.Groups {
		touches := false
		for _, c := range g.Corrs {
			if c.SrcAttr == srcAttr || c.MedIdx == medIdx {
				touches = true
				break
			}
		}
		if touches {
			merged = append(merged, g.Corrs...)
			touched = true
		} else {
			kept = append(kept, g)
		}
	}
	if !touched && !confirmed {
		return nil // rejecting something the system never believed
	}

	// Apply the feedback to the merged correspondence list.
	var updated []Corr
	found := false
	for _, c := range merged {
		isTarget := c.SrcAttr == srcAttr && c.MedIdx == medIdx
		if isTarget {
			found = true
			if confirmed {
				c.Weight = 1
				updated = append(updated, c)
			}
			continue // rejected: drop
		}
		if confirmed && (c.SrcAttr == srcAttr || c.MedIdx == medIdx) {
			continue // conflicts with the confirmed correspondence
		}
		updated = append(updated, c)
	}
	if confirmed && !found {
		updated = append(updated, Corr{SrcAttr: srcAttr, MedIdx: medIdx, Weight: 1})
	}

	if len(updated) == 0 {
		pm.Groups = kept
		return nil
	}
	// Re-split (removals may have disconnected the merged set) and
	// re-solve each component.
	for _, groupCorrs := range splitGroups(updated) {
		g, dropped, err := solveGroup(groupCorrs, cfg)
		if err != nil {
			return fmt.Errorf("pmapping: conditioning failed: %w", err)
		}
		pm.DroppedCorrs += dropped
		kept = append(kept, g)
	}
	pm.Groups = kept
	return nil
}

// MarginalProb returns the probability that srcAttr maps to medIdx under
// the p-mapping: the total probability of mappings containing the
// correspondence. It is 0 if the correspondence is not represented.
func (pm *PMapping) MarginalProb(srcAttr string, medIdx int) float64 {
	for _, g := range pm.Groups {
		ci := -1
		for i, c := range g.Corrs {
			if c.SrcAttr == srcAttr && c.MedIdx == medIdx {
				ci = i
				break
			}
		}
		if ci < 0 {
			continue
		}
		total := 0.0
		for k, mapping := range g.Mappings {
			for _, idx := range mapping {
				if idx == ci {
					total += g.Probs[k]
					break
				}
			}
		}
		return total
	}
	return 0
}

// Entropy returns the total entropy of the p-mapping (the sum of group
// entropies; groups are independent). Feedback monotonically reduces it.
func (pm *PMapping) Entropy() float64 {
	h := 0.0
	for _, g := range pm.Groups {
		h += maxent.Entropy(g.Probs)
	}
	return h
}
