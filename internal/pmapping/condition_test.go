package pmapping

import (
	"math"
	"testing"

	"udi/internal/schema"
)

func conditionFixture(t *testing.T) *PMapping {
	t.Helper()
	src := schema.MustNewSource("s", []string{"phone"}, nil)
	m := schema.MustNewMediatedSchema([]schema.MediatedAttr{
		schema.NewMediatedAttr("hPhone"),
		schema.NewMediatedAttr("oPhone"),
	})
	sim := func(a, b string) float64 {
		switch {
		case a == b:
			return 1
		case (a == "phone" && b == "hPhone") || (a == "hPhone" && b == "phone"):
			return 0.5
		case (a == "phone" && b == "oPhone") || (a == "oPhone" && b == "phone"):
			return 0.4
		}
		return 0
	}
	pm, err := Build(src, m, Config{Sim: sim, CorrThreshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

func TestConditionConfirm(t *testing.T) {
	pm := conditionFixture(t)
	if err := pm.Condition("phone", 0, true, Config{}); err != nil {
		t.Fatal(err)
	}
	if p := pm.MarginalProb("phone", 0); math.Abs(p-1) > 1e-9 {
		t.Errorf("confirmed marginal = %f", p)
	}
	// The conflicting correspondence to medIdx 1 is gone.
	if p := pm.MarginalProb("phone", 1); p != 0 {
		t.Errorf("conflicting marginal = %f", p)
	}
}

func TestConditionReject(t *testing.T) {
	pm := conditionFixture(t)
	if err := pm.Condition("phone", 0, false, Config{}); err != nil {
		t.Fatal(err)
	}
	if p := pm.MarginalProb("phone", 0); p != 0 {
		t.Errorf("rejected marginal = %f", p)
	}
	// The alternative correspondence survives with its original weight.
	if p := pm.MarginalProb("phone", 1); math.Abs(p-0.4) > 1e-6 {
		t.Errorf("surviving marginal = %f, want 0.4", p)
	}
}

func TestConditionInjectMissing(t *testing.T) {
	pm := conditionFixture(t)
	// medIdx 1 confirmation injects... it exists; use a fresh mapping with
	// no correspondence at all to medIdx 1 by rejecting both first.
	if err := pm.Condition("phone", 0, false, Config{}); err != nil {
		t.Fatal(err)
	}
	if err := pm.Condition("phone", 1, false, Config{}); err != nil {
		t.Fatal(err)
	}
	// Nothing left; confirming now must inject the correspondence.
	if err := pm.Condition("phone", 1, true, Config{}); err != nil {
		t.Fatal(err)
	}
	if p := pm.MarginalProb("phone", 1); math.Abs(p-1) > 1e-9 {
		t.Errorf("injected marginal = %f", p)
	}
}

func TestConditionRejectUnknownIsNoop(t *testing.T) {
	pm := conditionFixture(t)
	before := pm.Entropy()
	if err := pm.Condition("ghost", 0, false, Config{}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(pm.Entropy()-before) > 1e-12 {
		t.Error("rejecting an unknown correspondence changed the p-mapping")
	}
}

func TestEntropyDropsUnderConditioning(t *testing.T) {
	pm := conditionFixture(t)
	before := pm.Entropy()
	if err := pm.Condition("phone", 0, true, Config{}); err != nil {
		t.Fatal(err)
	}
	if pm.Entropy() >= before {
		t.Errorf("entropy did not drop: %f -> %f", before, pm.Entropy())
	}
}

func TestMarginalProbUnknown(t *testing.T) {
	pm := conditionFixture(t)
	if p := pm.MarginalProb("ghost", 3); p != 0 {
		t.Errorf("unknown marginal = %f", p)
	}
}
