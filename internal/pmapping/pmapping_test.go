package pmapping

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"udi/internal/schema"
)

// tableSim builds a similarity function from explicit pairs (symmetric,
// defaulting to 1 for identical names and 0 otherwise).
func tableSim(table map[[2]string]float64) func(a, b string) float64 {
	return func(a, b string) float64 {
		if w, ok := table[[2]string{a, b}]; ok {
			return w
		}
		if w, ok := table[[2]string{b, a}]; ok {
			return w
		}
		if a == b {
			return 1
		}
		return 0
	}
}

func med(clusters ...[]string) *schema.MediatedSchema {
	var attrs []schema.MediatedAttr
	for _, c := range clusters {
		attrs = append(attrs, schema.NewMediatedAttr(c...))
	}
	return schema.MustNewMediatedSchema(attrs)
}

func TestWeightedCorrespondencesSumOverCluster(t *testing.T) {
	src := schema.MustNewSource("s", []string{"phone"}, nil)
	m := med([]string{"phone", "hPhone"}, []string{"oPhone"})
	sim := tableSim(map[[2]string]float64{
		{"phone", "hPhone"}: 0.8,
		{"phone", "oPhone"}: 0.6,
	})
	corrs := WeightedCorrespondences(src, m, sim, 0.5)
	// Cluster {hPhone, phone}: 1 (identity) + 0.8 = 1.8. Cluster {oPhone}: 0.6.
	if len(corrs) != 2 {
		t.Fatalf("corrs = %v", corrs)
	}
	byIdx := map[int]float64{}
	for _, c := range corrs {
		byIdx[c.MedIdx] = c.Weight
	}
	hpIdx := 0 // {hPhone, phone} sorts first
	if math.Abs(byIdx[hpIdx]-1.8) > 1e-9 {
		t.Errorf("weight to {hPhone,phone} = %f, want 1.8", byIdx[hpIdx])
	}
	if math.Abs(byIdx[1]-0.6) > 1e-9 {
		t.Errorf("weight to {oPhone} = %f, want 0.6", byIdx[1])
	}
}

func TestWeightedCorrespondencesThreshold(t *testing.T) {
	src := schema.MustNewSource("s", []string{"x"}, nil)
	m := med([]string{"y"})
	sim := func(a, b string) float64 { return 0.5 }
	if corrs := WeightedCorrespondences(src, m, sim, 0.85); len(corrs) != 0 {
		t.Errorf("sub-threshold correspondence kept: %v", corrs)
	}
}

func TestNormalize(t *testing.T) {
	// Row sum for "a" is 1.5 -> M' = 1.5.
	corrs := []Corr{{"a", 0, 0.9}, {"a", 1, 0.6}, {"b", 2, 0.5}}
	norm := Normalize(corrs)
	if math.Abs(norm[0].Weight-0.6) > 1e-9 || math.Abs(norm[1].Weight-0.4) > 1e-9 {
		t.Errorf("normalized = %v", norm)
	}
	// Already-feasible weights must not be inflated (M' clamped at 1).
	corrs = []Corr{{"a", 0, 0.3}}
	if norm := Normalize(corrs); norm[0].Weight != 0.3 {
		t.Errorf("feasible weight inflated to %f", norm[0].Weight)
	}
	// Column sums count too.
	corrs = []Corr{{"a", 0, 0.9}, {"b", 0, 0.9}}
	norm = Normalize(corrs)
	if math.Abs(norm[0].Weight-0.5) > 1e-9 {
		t.Errorf("column normalization wrong: %v", norm)
	}
	// Theorem 5.2 conditions hold afterwards.
	rows := map[string]float64{}
	cols := map[int]float64{}
	for _, c := range norm {
		rows[c.SrcAttr] += c.Weight
		cols[c.MedIdx] += c.Weight
	}
	for _, s := range rows {
		if s > 1+1e-9 {
			t.Errorf("row sum %f > 1", s)
		}
	}
	for _, s := range cols {
		if s > 1+1e-9 {
			t.Errorf("col sum %f > 1", s)
		}
	}
}

// The paper's §5.2 worked example: correspondences A→A' = 0.6, B→B' = 0.5
// must yield the independent-product p-mapping pM1 with probabilities
// 0.3 / 0.3 / 0.2 / 0.2.
func TestBuildPaperExample(t *testing.T) {
	src := schema.MustNewSource("s", []string{"A", "B"}, nil)
	m := med([]string{"Aprime"}, []string{"Bprime"})
	sim := tableSim(map[[2]string]float64{
		{"A", "Aprime"}: 0.6,
		{"B", "Bprime"}: 0.5,
	})
	pm, err := Build(src, m, Config{Sim: sim, CorrThreshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pm.Groups) != 2 {
		t.Fatalf("want 2 independent groups, got %d", len(pm.Groups))
	}
	full, err := pm.FullMappings(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 4 {
		t.Fatalf("want 4 full mappings, got %d", len(full))
	}
	// Find each mapping's probability by its correspondence set.
	probs := map[int]float64{} // bitmask: 1 = A mapped, 2 = B mapped
	for _, fm := range full {
		mask := 0
		for _, p := range fm.Pairs {
			switch p.Med {
			case 0:
				mask |= 1
			case 1:
				mask |= 2
			}
		}
		probs[mask] += fm.Prob
	}
	want := map[int]float64{3: 0.3, 1: 0.3, 2: 0.2, 0: 0.2}
	for mask, w := range want {
		if math.Abs(probs[mask]-w) > 1e-8 {
			t.Errorf("mask %d: prob %f, want %f", mask, probs[mask], w)
		}
	}
}

func TestBuildCompetingCorrespondences(t *testing.T) {
	// One source attribute similar to two mediated attributes: one group,
	// mutually exclusive correspondences. Maxent: P(a→0) = w0, P(a→1) = w1,
	// P(empty) = 1 − w0 − w1.
	src := schema.MustNewSource("s", []string{"phone"}, nil)
	m := med([]string{"hPhone"}, []string{"oPhone"})
	sim := tableSim(map[[2]string]float64{
		{"phone", "hPhone"}: 0.5,
		{"phone", "oPhone"}: 0.4,
	})
	pm, err := Build(src, m, Config{Sim: sim, CorrThreshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pm.Groups) != 1 {
		t.Fatalf("want 1 group, got %d", len(pm.Groups))
	}
	g := pm.Groups[0]
	if len(g.Mappings) != 3 {
		t.Fatalf("want 3 mappings (empty, →h, →o), got %d", len(g.Mappings))
	}
	if r := pm.ConsistencyResidual(); r > 1e-8 {
		t.Errorf("residual %g", r)
	}
	sum := 0.0
	for _, p := range g.Probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("group probs sum to %f", sum)
	}
}

func TestBuildNoCorrespondences(t *testing.T) {
	src := schema.MustNewSource("s", []string{"zzz"}, nil)
	m := med([]string{"title"})
	pm, err := Build(src, m, Config{Sim: func(a, b string) float64 { return 0 }})
	if err != nil {
		t.Fatal(err)
	}
	if len(pm.Groups) != 0 {
		t.Errorf("expected no groups, got %d", len(pm.Groups))
	}
	asgns := pm.AssignmentsFor([]int{0})
	if len(asgns) != 1 || asgns[0].Prob != 1 || len(asgns[0].MedToSrc) != 0 {
		t.Errorf("empty p-mapping assignments = %v", asgns)
	}
	top, p := pm.TopMapping()
	if len(top) != 0 || p != 1 {
		t.Errorf("TopMapping = %v, %f", top, p)
	}
}

func TestAssignmentsForMarginalizes(t *testing.T) {
	// Two groups; asking about only one mediated attribute must not
	// enumerate the other group's mappings.
	src := schema.MustNewSource("s", []string{"A", "B"}, nil)
	m := med([]string{"Aprime"}, []string{"Bprime"})
	sim := tableSim(map[[2]string]float64{
		{"A", "Aprime"}: 0.6,
		{"B", "Bprime"}: 0.5,
	})
	pm, err := Build(src, m, Config{Sim: sim, CorrThreshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	asgns := pm.AssignmentsFor([]int{0})
	if len(asgns) != 2 {
		t.Fatalf("want 2 marginal assignments, got %v", asgns)
	}
	total := 0.0
	mappedProb := 0.0
	for _, a := range asgns {
		total += a.Prob
		if a.MedToSrc[0] == "A" {
			mappedProb += a.Prob
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("marginal probs sum to %f", total)
	}
	if math.Abs(mappedProb-0.6) > 1e-8 {
		t.Errorf("P(A mapped) = %f, want 0.6", mappedProb)
	}
}

func TestTopMapping(t *testing.T) {
	src := schema.MustNewSource("s", []string{"A", "B"}, nil)
	m := med([]string{"Aprime"}, []string{"Bprime"})
	sim := tableSim(map[[2]string]float64{
		{"A", "Aprime"}: 0.9,
		{"B", "Bprime"}: 0.8,
	})
	pm, err := Build(src, m, Config{Sim: sim, CorrThreshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	top, p := pm.TopMapping()
	if top[0] != "A" || top[1] != "B" {
		t.Errorf("TopMapping = %v", top)
	}
	if math.Abs(p-0.72) > 1e-8 {
		t.Errorf("top probability = %f, want 0.72", p)
	}
}

func TestGroupCapDropsWeakest(t *testing.T) {
	// A clique group: source attrs a,b each similar to med attrs 0,1.
	// With a tiny cap, enumeration must drop correspondences instead of
	// failing.
	src := schema.MustNewSource("s", []string{"a", "b"}, nil)
	m := med([]string{"x"}, []string{"y"})
	sim := tableSim(map[[2]string]float64{
		{"a", "x"}: 0.50, {"a", "y"}: 0.45,
		{"b", "x"}: 0.44, {"b", "y"}: 0.48,
	})
	pm, err := Build(src, m, Config{Sim: sim, CorrThreshold: 0.4, MaxMappingsPerGroup: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pm.DroppedCorrs == 0 {
		t.Error("expected dropped correspondences under tiny cap")
	}
	for _, g := range pm.Groups {
		sum := 0.0
		for _, p := range g.Probs {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("group probs sum to %f", sum)
		}
	}
}

func TestNumFullMappings(t *testing.T) {
	pm := &PMapping{Groups: []Group{
		{Mappings: [][]int{{}, {0}}},
		{Mappings: [][]int{{}, {0}, {1}}},
	}}
	if n := pm.NumFullMappings(); n != 6 {
		t.Errorf("NumFullMappings = %d, want 6", n)
	}
	if _, err := pm.FullMappings(5); err == nil {
		t.Error("FullMappings over limit should error")
	}
}

// Property: on random instances, every group's probabilities sum to 1, the
// Definition 5.1 residual is tiny, one-to-one-ness holds within every
// mapping, and the full marginal over all mediated attributes sums to 1.
func TestBuildRandomProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSrc := 1 + rng.Intn(4)
		nMed := 1 + rng.Intn(4)
		srcAttrs := make([]string, nSrc)
		for i := range srcAttrs {
			srcAttrs[i] = string(rune('a' + i))
		}
		var clusters [][]string
		for j := 0; j < nMed; j++ {
			clusters = append(clusters, []string{string(rune('A' + j))})
		}
		table := make(map[[2]string]float64)
		for i := 0; i < nSrc; i++ {
			for j := 0; j < nMed; j++ {
				if rng.Float64() < 0.5 {
					table[[2]string{srcAttrs[i], clusters[j][0]}] = 0.4 + 0.6*rng.Float64()
				}
			}
		}
		src := schema.MustNewSource("s", srcAttrs, nil)
		m := med(clusters...)
		pm, err := Build(src, m, Config{Sim: tableSim(table), CorrThreshold: 0.4})
		if err != nil {
			return false
		}
		if pm.ConsistencyResidual() > 1e-6 {
			return false
		}
		for _, g := range pm.Groups {
			sum := 0.0
			for _, p := range g.Probs {
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				return false
			}
			for _, mapping := range g.Mappings {
				seenSrc := map[string]bool{}
				seenMed := map[int]bool{}
				for _, ci := range mapping {
					c := g.Corrs[ci]
					if seenSrc[c.SrcAttr] || seenMed[c.MedIdx] {
						return false
					}
					seenSrc[c.SrcAttr], seenMed[c.MedIdx] = true, true
				}
			}
		}
		all := make([]int, nMed)
		for j := range all {
			all[j] = j
		}
		total := 0.0
		for _, a := range pm.AssignmentsFor(all) {
			total += a.Prob
		}
		return math.Abs(total-1) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuildSmall(b *testing.B) {
	src := schema.MustNewSource("s", []string{"A", "B", "C"}, nil)
	m := med([]string{"Aprime"}, []string{"Bprime"}, []string{"Cprime"})
	sim := tableSim(map[[2]string]float64{
		{"A", "Aprime"}: 0.9, {"B", "Bprime"}: 0.8, {"C", "Cprime"}: 0.7,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(src, m, Config{Sim: sim, CorrThreshold: 0.4}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAggregateModes(t *testing.T) {
	src := schema.MustNewSource("s", []string{"address."}, nil)
	m := med([]string{"address", "address."})
	sim := func(a, b string) float64 {
		// Both cluster members normalize identically to the source attr.
		return 1
	}
	sum := WeightedCorrespondencesAgg(src, m, sim, 0.85, AggSum)
	if len(sum) != 1 || sum[0].Weight != 2 {
		t.Errorf("AggSum = %v, want weight 2", sum)
	}
	max := WeightedCorrespondencesAgg(src, m, sim, 0.85, AggMax)
	if len(max) != 1 || max[0].Weight != 1 {
		t.Errorf("AggMax = %v, want weight 1", max)
	}
	avg := WeightedCorrespondencesAgg(src, m, sim, 0.85, AggAvg)
	if len(avg) != 1 || avg[0].Weight != 1 {
		t.Errorf("AggAvg = %v, want weight 1", avg)
	}

	// The collateral damage of the sum: a second, unrelated identity
	// correspondence is dragged down by the global M' normalization when
	// another cluster's weight is inflated past 1 — AggMax avoids it.
	src2 := schema.MustNewSource("s", []string{"address.", "phone"}, nil)
	m2 := med([]string{"address", "address."}, []string{"phone"})
	sim2 := func(a, b string) float64 {
		if a == "phone" || b == "phone" {
			if a == b {
				return 1
			}
			return 0
		}
		return 1 // all address variants are identical after normalization
	}
	pm, err := Build(src2, m2, Config{Sim: sim2, Aggregate: AggSum})
	if err != nil {
		t.Fatal(err)
	}
	if p := pm.MarginalProb("phone", 1); p > 0.75 {
		t.Errorf("AggSum phone marginal = %f, expected dampened (< 0.75)", p)
	}
	pm, err = Build(src2, m2, Config{Sim: sim2, Aggregate: AggMax})
	if err != nil {
		t.Fatal(err)
	}
	if p := pm.MarginalProb("phone", 1); math.Abs(p-1) > 1e-9 {
		t.Errorf("AggMax phone marginal = %f, want 1", p)
	}
	if p := pm.MarginalProb("address.", 0); math.Abs(p-1) > 1e-9 {
		t.Errorf("AggMax address marginal = %f, want 1", p)
	}
}

// TestBuildCanonicalUnderAttrOrder pins the invariant the schema-dedup
// cache relies on: two sources whose schemas are equal as *sets* produce
// identical p-mappings (groups, correspondences, mappings, probabilities)
// regardless of the order their attributes are listed in.
func TestBuildCanonicalUnderAttrOrder(t *testing.T) {
	attrs := []string{"name", "phone", "fone", "email", "addr"}
	m := med([]string{"name"}, []string{"phone", "fone"}, []string{"email"}, []string{"addr"})
	rng := rand.New(rand.NewSource(11))
	base, err := Build(schema.MustNewSource("base", attrs, nil), m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]string{}, attrs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		pm, err := Build(schema.MustNewSource("base", shuffled, nil), m, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, pm) {
			t.Fatalf("trial %d: p-mapping differs under attr order %v:\n%+v\nvs\n%+v", trial, shuffled, base, pm)
		}
	}
}

// TestClone checks the deep copy: value-identical (DeepEqual) to the
// original, no shared mutable slices, and nil-ness preserved so a clone
// matches a fresh Build byte-for-byte.
func TestClone(t *testing.T) {
	src := schema.MustNewSource("s", []string{"name", "phone", "fone"}, nil)
	m := med([]string{"name"}, []string{"phone", "fone"})
	pm, err := Build(src, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cp := pm.Clone()
	if !reflect.DeepEqual(pm, cp) {
		t.Fatalf("clone not DeepEqual:\n%+v\nvs\n%+v", pm, cp)
	}
	if len(cp.Groups) == 0 {
		t.Fatal("test schema produced no groups")
	}
	// Mutate the clone the way feedback does; the original must not move.
	before := pm.Groups[0].Probs[0]
	cp.Groups[0].Probs[0] = -1
	cp.Groups[0].Corrs[0].Weight = -1
	if len(cp.Groups[0].Mappings) > 1 {
		cp.Groups[0].Mappings[1] = append(cp.Groups[0].Mappings[1], 99)
	}
	if pm.Groups[0].Probs[0] != before || pm.Groups[0].Corrs[0].Weight == -1 {
		t.Fatal("mutating clone changed the original")
	}
	for k, mp := range pm.Groups[0].Mappings {
		for _, ci := range mp {
			if ci == 99 {
				t.Fatalf("mapping %d aliases the clone", k)
			}
		}
	}
	// Conditioning the clone must leave the original untouched.
	if err := cp.Condition("name", 0, true, Config{}); err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(src, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pm, fresh) {
		t.Fatal("conditioning a clone mutated the original p-mapping")
	}
}
