// Package pmapping constructs probabilistic schema mappings between a
// source schema and a mediated schema (paper §5):
//
//  1. weighted correspondences p_{i,j} = Σ_{a∈A_j} s(a_i, a), thresholded
//     (§5.1);
//  2. normalization by M′ = max of row/column sums so a consistent
//     p-mapping exists (Theorem 5.2);
//  3. decomposition of the bipartite correspondence graph into independent
//     groups ("group p-mappings" of Dong et al., cited in §5.2 to localize
//     the uncertainty);
//  4. per group, enumeration of every one-to-one (partial) mapping over the
//     group's correspondences and maximum-entropy probability assignment
//     (the OPT program of §5.2, solved by internal/maxent).
//
// The full p-mapping is the product distribution across groups; callers
// marginalize onto the mediated attributes a query touches rather than
// materializing the exponential product.
package pmapping

import (
	"fmt"
	"math"
	"sort"

	"udi/internal/maxent"
	"udi/internal/schema"
	"udi/internal/strutil"
)

// Config tunes p-mapping construction.
type Config struct {
	// Sim is the pairwise attribute-name similarity (default
	// strutil.AttrSim).
	Sim strutil.Func
	// CorrThreshold zeroes raw correspondence weights below it (default
	// 0.85, per §7.1, chosen high to keep the maxent search small and the
	// retained correspondences mostly correct — §7.2 discusses both
	// effects).
	CorrThreshold float64
	// MaxMappingsPerGroup bounds the matchings enumerated inside one
	// group; when a group exceeds it, its lowest-weight correspondence is
	// dropped and enumeration retried (default 4096).
	MaxMappingsPerGroup int
	// Maxent tunes the entropy solver.
	Maxent maxent.Options
	// Assignment selects how probabilities are assigned to the enumerated
	// mappings: AssignMaxEnt (default, the paper's §5.2 OPT program) or
	// AssignUniform (ablation: uniform over mappings, ignoring the
	// correspondence weights).
	Assignment AssignStrategy
	// Aggregate selects how the qualifying pairwise similarities combine
	// into a cluster correspondence weight. The paper uses the sum
	// (footnote 1: "the sum of pairwise similarities looks at the cluster
	// as a whole") and mentions avg and max as alternatives; AggMax keeps
	// identity matches at weight 1 instead of letting near-duplicate
	// cluster members inflate the weight and drag every other
	// correspondence down through the M' normalization.
	Aggregate Aggregate
}

// Aggregate selects the cluster-weight aggregation of §5.1.
type Aggregate int

const (
	// AggSum sums qualifying pairwise similarities (the paper's choice).
	AggSum Aggregate = iota
	// AggMax takes the maximum qualifying similarity (footnote 1
	// alternative).
	AggMax
	// AggAvg averages the qualifying similarities (footnote 1
	// alternative).
	AggAvg
)

// AssignStrategy selects the probability-assignment strategy.
type AssignStrategy int

const (
	// AssignMaxEnt solves the maximum-entropy program of §5.2.
	AssignMaxEnt AssignStrategy = iota
	// AssignUniform distributes probability uniformly over the enumerated
	// mappings; an ablation baseline that discards correspondence weights.
	AssignUniform
)

func (c Config) withDefaults() Config {
	if c.Sim == nil {
		c.Sim = strutil.AttrSim
	}
	if c.CorrThreshold == 0 {
		c.CorrThreshold = 0.85
	}
	if c.MaxMappingsPerGroup == 0 {
		c.MaxMappingsPerGroup = 4096
	}
	return c
}

// Corr is one weighted correspondence between a source attribute and a
// mediated attribute (identified by its index in the mediated schema).
type Corr struct {
	SrcAttr string
	MedIdx  int
	Weight  float64 // normalized weight p'_{i,j}
}

func (c Corr) String() string {
	return fmt.Sprintf("(%s → A%d, %.3f)", c.SrcAttr, c.MedIdx, c.Weight)
}

// Group is an independent component of the correspondence graph together
// with its enumerated one-to-one mappings and their maxent probabilities.
type Group struct {
	Corrs []Corr
	// Mappings[k] lists indices into Corrs forming the k-th one-to-one
	// mapping (possibly empty: the mapping that maps nothing).
	Mappings [][]int
	Probs    []float64
}

// PMapping is a probabilistic one-to-one schema mapping between a source
// and a mediated schema, factored into independent groups.
type PMapping struct {
	SourceName string
	Med        *schema.MediatedSchema
	Groups     []Group
	// DroppedCorrs counts correspondences discarded to keep group
	// enumeration within bounds; nonzero values indicate the p-mapping is
	// an approximation.
	DroppedCorrs int
}

// Clone returns a deep copy of the p-mapping: feedback conditioning
// mutates groups in place, so sources sharing a schema-dedup cache entry
// each receive their own clone. Nil-versus-empty slice distinctions are
// preserved so a clone is reflect.DeepEqual to a fresh Build of the same
// schema (modulo SourceName). The mediated schema is shared — it is
// immutable after construction.
func (pm *PMapping) Clone() *PMapping {
	cp := &PMapping{SourceName: pm.SourceName, Med: pm.Med, DroppedCorrs: pm.DroppedCorrs}
	if pm.Groups != nil {
		cp.Groups = make([]Group, len(pm.Groups))
		for i, g := range pm.Groups {
			ng := Group{
				Corrs: cloneSlice(g.Corrs),
				Probs: cloneSlice(g.Probs),
			}
			if g.Mappings != nil {
				ng.Mappings = make([][]int, len(g.Mappings))
				for k, m := range g.Mappings {
					ng.Mappings[k] = cloneSlice(m)
				}
			}
			cp.Groups[i] = ng
		}
	}
	return cp
}

// cloneSlice copies a slice, preserving nil.
func cloneSlice[T any](s []T) []T {
	if s == nil {
		return nil
	}
	out := make([]T, len(s))
	copy(out, s)
	return out
}

// Build constructs the p-mapping between src and med per §5.
func Build(src *schema.Source, med *schema.MediatedSchema, cfg Config) (*PMapping, error) {
	cfg = cfg.withDefaults()

	corrs := WeightedCorrespondencesAgg(src, med, cfg.Sim, cfg.CorrThreshold, cfg.Aggregate)
	corrs = Normalize(corrs)

	pm := &PMapping{SourceName: src.Name, Med: med}
	for _, groupCorrs := range splitGroups(corrs) {
		g, dropped, err := solveGroup(groupCorrs, cfg)
		if err != nil {
			return nil, fmt.Errorf("pmapping: source %q: %w", src.Name, err)
		}
		pm.DroppedCorrs += dropped
		pm.Groups = append(pm.Groups, g)
	}
	return pm, nil
}

// WeightedCorrespondences computes the thresholded raw weights of §5.1:
// p_{i,j} = Σ_{a∈A_j} s(a_i, a), where only pairwise similarities at or
// above the threshold contribute, and correspondences with no qualifying
// pair are dropped entirely. The paper applies a high threshold (0.85) "to
// reduce the number of correspondences considered in the entropy
// maximization" and attributes a recall loss to it (§7.2); thresholding
// the individual similarities — rather than the cluster sum — is what
// produces that behaviour: a source attribute reaches a cluster only if it
// is strongly similar to at least one member, not through many weak
// affinities.
func WeightedCorrespondences(src *schema.Source, med *schema.MediatedSchema, sim strutil.Func, threshold float64) []Corr {
	return WeightedCorrespondencesAgg(src, med, sim, threshold, AggSum)
}

// WeightedCorrespondencesAgg is WeightedCorrespondences with an explicit
// cluster-weight aggregation (see Aggregate).
func WeightedCorrespondencesAgg(src *schema.Source, med *schema.MediatedSchema, sim strutil.Func, threshold float64, agg Aggregate) []Corr {
	var out []Corr
	for _, ai := range src.Attrs {
		for j, Aj := range med.Attrs {
			w, n := 0.0, 0
			for _, a := range Aj {
				s := sim(ai, a)
				if s < threshold {
					continue
				}
				n++
				switch agg {
				case AggMax:
					if s > w {
						w = s
					}
				default:
					w += s
				}
			}
			if n == 0 {
				continue
			}
			if agg == AggAvg {
				w /= float64(n)
			}
			out = append(out, Corr{SrcAttr: ai, MedIdx: j, Weight: w})
		}
	}
	return out
}

// Normalize divides every weight by M′ = max(1, max row sum, max column
// sum) per Theorem 5.2, guaranteeing a consistent p-mapping exists. (The
// theorem's statement divides by M′ unconditionally; when every sum is
// already ≤ 1 that would inflate weights, so we clamp M′ at 1 — the
// conditions of the theorem hold either way.)
func Normalize(corrs []Corr) []Corr {
	rowSums := make(map[string]float64)
	colSums := make(map[int]float64)
	for _, c := range corrs {
		rowSums[c.SrcAttr] += c.Weight
		colSums[c.MedIdx] += c.Weight
	}
	mprime := 1.0
	for _, s := range rowSums {
		mprime = math.Max(mprime, s)
	}
	for _, s := range colSums {
		mprime = math.Max(mprime, s)
	}
	out := make([]Corr, len(corrs))
	for i, c := range corrs {
		c.Weight /= mprime
		out[i] = c
	}
	return out
}

// splitGroups partitions the correspondences into connected components of
// the bipartite graph whose vertices are source attributes and mediated
// attributes. The output is canonical: correspondences within a group are
// sorted (SrcAttr, MedIdx) and groups are ordered by their smallest
// correspondence, so the result depends only on the correspondence *set*,
// not on the order source attributes were listed in. The schema-dedup
// cache in core relies on this to share p-mappings across sources whose
// schemas are equal as sets.
func splitGroups(corrs []Corr) [][]Corr {
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		if parent[x] == "" || parent[x] == x {
			parent[x] = x
			return x
		}
		r := find(parent[x])
		parent[x] = r
		return r
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	srcKey := func(a string) string { return "s\x00" + a }
	medKey := func(j int) string { return fmt.Sprintf("m\x00%d", j) }
	for _, c := range corrs {
		union(srcKey(c.SrcAttr), medKey(c.MedIdx))
	}
	byRoot := make(map[string][]Corr)
	var roots []string
	for _, c := range corrs {
		r := find(srcKey(c.SrcAttr))
		if _, ok := byRoot[r]; !ok {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], c)
	}
	out := make([][]Corr, 0, len(roots))
	for _, r := range roots {
		g := byRoot[r]
		sort.Slice(g, func(i, j int) bool {
			if g[i].SrcAttr != g[j].SrcAttr {
				return g[i].SrcAttr < g[j].SrcAttr
			}
			return g[i].MedIdx < g[j].MedIdx
		})
		out = append(out, g)
	}
	// Sort groups by their smallest correspondence — the groups are
	// already internally sorted, so this order is input-order-free.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i][0], out[j][0]
		if a.SrcAttr != b.SrcAttr {
			return a.SrcAttr < b.SrcAttr
		}
		return a.MedIdx < b.MedIdx
	})
	return out
}

// solveGroup enumerates one-to-one mappings over the group's
// correspondences and fits the maxent distribution. If enumeration exceeds
// the cap, the lowest-weight correspondence is dropped and the group is
// re-enumerated; dropped counts how many were discarded.
func solveGroup(corrs []Corr, cfg Config) (Group, int, error) {
	dropped := 0
	for {
		mappings := enumerateMatchings(corrs, cfg.MaxMappingsPerGroup)
		if mappings == nil {
			if len(corrs) == 0 {
				return Group{}, dropped, fmt.Errorf("cannot reduce group below zero correspondences")
			}
			// Drop the lowest-weight correspondence (deterministic
			// tie-break on attr/index) and retry.
			low := 0
			for i := 1; i < len(corrs); i++ {
				if corrs[i].Weight < corrs[low].Weight {
					low = i
				}
			}
			corrs = append(append([]Corr{}, corrs[:low]...), corrs[low+1:]...)
			dropped++
			continue
		}
		if cfg.Assignment == AssignUniform {
			probs := make([]float64, len(mappings))
			for i := range probs {
				probs[i] = 1 / float64(len(mappings))
			}
			return Group{Corrs: corrs, Mappings: mappings, Probs: probs}, dropped, nil
		}
		targets := make([]float64, len(corrs))
		for i, c := range corrs {
			targets[i] = c.Weight
		}
		probs, err := maxent.Solve(maxent.Problem{
			NumOutcomes: len(mappings),
			Features:    mappings,
			Targets:     targets,
		}, cfg.Maxent)
		if err != nil {
			return Group{}, dropped, err
		}
		return Group{Corrs: corrs, Mappings: mappings, Probs: probs}, dropped, nil
	}
}

// enumerateMatchings lists every subset of correspondence indices forming a
// one-to-one mapping (no source attribute or mediated attribute repeated),
// including the empty mapping. Returns nil if the count would exceed cap.
func enumerateMatchings(corrs []Corr, cap int) [][]int {
	var out [][]int
	var cur []int
	usedSrc := make(map[string]bool)
	usedMed := make(map[int]bool)
	overflow := false
	var rec func(start int)
	rec = func(start int) {
		if overflow {
			return
		}
		m := make([]int, len(cur))
		copy(m, cur)
		out = append(out, m)
		if len(out) > cap {
			overflow = true
			return
		}
		for i := start; i < len(corrs); i++ {
			c := corrs[i]
			if usedSrc[c.SrcAttr] || usedMed[c.MedIdx] {
				continue
			}
			usedSrc[c.SrcAttr], usedMed[c.MedIdx] = true, true
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
			usedSrc[c.SrcAttr], usedMed[c.MedIdx] = false, false
		}
	}
	rec(0)
	if overflow {
		return nil
	}
	return out
}

// Assignment is one joint one-to-one mapping restricted to a set of
// mediated attributes: MedToSrc maps a mediated-attribute index to the
// source attribute it corresponds to (absent = unmapped under this
// mapping), with the marginal probability of that restriction.
type Assignment struct {
	MedToSrc map[int]string
	Prob     float64
}

// AssignmentsFor returns the marginal distribution of mappings restricted
// to the given mediated-attribute indices. Groups not touching any of the
// indices marginalize out; within a touching group, mappings with the same
// restriction merge. The result is the exact by-table marginal used for
// query rewriting.
func (pm *PMapping) AssignmentsFor(medIdxs []int) []Assignment {
	want := make(map[int]bool, len(medIdxs))
	for _, j := range medIdxs {
		want[j] = true
	}
	result := []Assignment{{MedToSrc: map[int]string{}, Prob: 1}}
	for _, g := range pm.Groups {
		touches := false
		for _, c := range g.Corrs {
			if want[c.MedIdx] {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		// Project the group's mappings onto the wanted indices and merge
		// identical projections.
		type proj struct {
			key  string
			asgn map[int]string
			prob float64
		}
		merged := map[string]*proj{}
		var order []string
		for k, mapping := range g.Mappings {
			asgn := make(map[int]string)
			for _, ci := range mapping {
				c := g.Corrs[ci]
				if want[c.MedIdx] {
					asgn[c.MedIdx] = c.SrcAttr
				}
			}
			key := projKey(asgn)
			if p, ok := merged[key]; ok {
				p.prob += g.Probs[k]
				continue
			}
			merged[key] = &proj{key: key, asgn: asgn, prob: g.Probs[k]}
			order = append(order, key)
		}
		// Cross-product with the accumulated assignments.
		next := make([]Assignment, 0, len(result)*len(order))
		for _, r := range result {
			for _, key := range order {
				p := merged[key]
				if p.prob == 0 {
					continue
				}
				combined := make(map[int]string, len(r.MedToSrc)+len(p.asgn))
				for k, v := range r.MedToSrc {
					combined[k] = v
				}
				for k, v := range p.asgn {
					combined[k] = v
				}
				next = append(next, Assignment{MedToSrc: combined, Prob: r.Prob * p.prob})
			}
		}
		result = next
	}
	return result
}

func projKey(asgn map[int]string) string {
	idxs := make([]int, 0, len(asgn))
	for j := range asgn {
		idxs = append(idxs, j)
	}
	sort.Ints(idxs)
	s := ""
	for _, j := range idxs {
		s += fmt.Sprintf("%d=%s\x1f", j, asgn[j])
	}
	return s
}

// TopMapping returns the highest-probability full mapping (the product of
// each group's most probable mapping — groups are independent, so the
// joint argmax factors) as a mediated-index → source-attribute assignment,
// with its probability. Ties break toward the earlier enumerated mapping.
func (pm *PMapping) TopMapping() (map[int]string, float64) {
	out := make(map[int]string)
	p := 1.0
	for _, g := range pm.Groups {
		best := 0
		for k := range g.Mappings {
			if g.Probs[k] > g.Probs[best] {
				best = k
			}
		}
		for _, ci := range g.Mappings[best] {
			c := g.Corrs[ci]
			out[c.MedIdx] = c.SrcAttr
		}
		p *= g.Probs[best]
	}
	return out, p
}

// NumFullMappings returns the number of full mappings in the product
// distribution, saturating at math.MaxInt64.
func (pm *PMapping) NumFullMappings() int64 {
	n := int64(1)
	for _, g := range pm.Groups {
		c := int64(len(g.Mappings))
		if c == 0 {
			continue
		}
		if n > math.MaxInt64/c {
			return math.MaxInt64
		}
		n *= c
	}
	return n
}

// MedSrc is one correspondence of an explicit mapping: mediated-attribute
// index Med maps to source attribute Src.
type MedSrc struct {
	Med int
	Src string
}

// FullMapping is one explicit one-to-one mapping with its probability.
// Groups partition the source attributes and mappings are one-to-one, so
// each Med index and each Src attribute appears at most once in Pairs.
type FullMapping struct {
	Pairs []MedSrc
	Prob  float64
}

// FullMappings materializes the product distribution across groups. It
// returns an error if the count exceeds limit; use AssignmentsFor for
// query answering instead.
func (pm *PMapping) FullMappings(limit int64) ([]FullMapping, error) {
	if n := pm.NumFullMappings(); n > limit {
		return nil, fmt.Errorf("pmapping: %d full mappings exceed limit %d", n, limit)
	}
	result := []FullMapping{{Prob: 1}}
	for _, g := range pm.Groups {
		// Materialize each group mapping's pair list once; the product
		// step below then only concatenates slices.
		gp := make([][]MedSrc, len(g.Mappings))
		for k, mapping := range g.Mappings {
			pairs := make([]MedSrc, len(mapping))
			for x, ci := range mapping {
				c := g.Corrs[ci]
				pairs[x] = MedSrc{Med: c.MedIdx, Src: c.SrcAttr}
			}
			gp[k] = pairs
		}
		next := make([]FullMapping, 0, len(result)*len(g.Mappings))
		for _, r := range result {
			for k := range g.Mappings {
				combined := make([]MedSrc, 0, len(r.Pairs)+len(gp[k]))
				combined = append(combined, r.Pairs...)
				combined = append(combined, gp[k]...)
				next = append(next, FullMapping{Pairs: combined, Prob: r.Prob * g.Probs[k]})
			}
		}
		result = next
	}
	return result, nil
}

// ConsistencyResidual reports the worst violation of Definition 5.1 over
// all groups: for each correspondence, |Σ_{m∋(i,j)} Pr(m) − p_{i,j}|.
func (pm *PMapping) ConsistencyResidual() float64 {
	worst := 0.0
	for _, g := range pm.Groups {
		for ci, c := range g.Corrs {
			total := 0.0
			for k, mapping := range g.Mappings {
				for _, idx := range mapping {
					if idx == ci {
						total += g.Probs[k]
						break
					}
				}
			}
			if d := math.Abs(total - c.Weight); d > worst {
				worst = d
			}
		}
	}
	return worst
}
