// Golden-standard regression fixtures: the five-domain Table 2 numbers
// recorded in EXPERIMENTS.md, pinned so changes to the matcher, maxent
// solver or query engine cannot silently drift the headline results.
// The external test package breaks the eval ← experiments import cycle.
package eval_test

import (
	"math"
	"testing"

	"udi/internal/core"
	"udi/internal/datagen"
	"udi/internal/experiments"
)

// table2Golden are the measured golden-standard rows of EXPERIMENTS.md
// Table 2 (precision / recall / F per domain, seed = the domain's
// canonical seed). The tolerance absorbs the 3-decimal rounding in the
// table, nothing more: a real behavior change trips it.
var table2Golden = []struct {
	name      string
	spec      *datagen.Domain
	p, r, f   float64
	shortMode bool // also run under -short (keep at least one domain covered)
}{
	{"Movie", datagen.Movie(101), 1.000, 0.888, 0.940, false},
	{"Car", datagen.Car(102), 1.000, 0.905, 0.949, false},
	{"People", datagen.People(103), 0.927, 0.855, 0.882, true},
	{"Course", datagen.Course(104), 1.000, 0.923, 0.960, false},
	{"Bib", datagen.Bib(105), 0.949, 1.000, 0.966, false},
}

const table2Tol = 0.0006 // the table rounds to 3 decimals

func TestTable2GoldenRegression(t *testing.T) {
	for _, row := range table2Golden {
		row := row
		t.Run(row.name, func(t *testing.T) {
			if testing.Short() && !row.shortMode {
				t.Skip("large domain skipped under -short")
			}
			t.Parallel()
			r, err := experiments.Load(row.spec)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := r.UDI()
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Score(sys, core.UDI)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Precision-row.p) > table2Tol ||
				math.Abs(got.Recall-row.r) > table2Tol ||
				math.Abs(got.F-row.f) > table2Tol {
				t.Errorf("%s golden-standard PRF drifted: got %.3f/%.3f/%.3f, EXPERIMENTS.md records %.3f/%.3f/%.3f",
					row.name, got.Precision, got.Recall, got.F, row.p, row.r, row.f)
			}
		})
	}
}
