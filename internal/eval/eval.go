// Package eval computes the paper's performance measures (§7.1): query
// precision / recall / F-measure against a golden standard (duplicates are
// NOT removed before measuring, to be fair to approaches that cannot
// rank), recall-precision curves over ranked deduplicated answers (§7.4,
// Figure 6), and pairwise clustering precision/recall for mediated-schema
// quality (§7.5, Table 3).
package eval

import (
	"sort"
	"strings"

	"udi/internal/answer"
	"udi/internal/schema"
)

// Key identifies one answer occurrence: a row of a source.
type Key struct {
	Source string
	Row    int
}

// Entry is one golden answer occurrence: a source row together with one
// acceptable projection of it. A row may have several entries when the
// query contains ambiguous attributes — e.g. a source with both home and
// office phones has two correct projections for a query on "phone"
// (Example 2.1 counts both interpretations as correct).
type Entry struct {
	Key    Key
	Values []string
}

// Golden is the golden standard for one query.
type Golden struct {
	Entries []Entry
}

// NewGolden builds a Golden from a (key → single projection) map; the
// common unambiguous case.
func NewGolden(rows map[Key][]string) *Golden {
	g := &Golden{}
	for k, v := range rows {
		g.Entries = append(g.Entries, Entry{Key: k, Values: v})
	}
	return g
}

// Add appends an entry, skipping exact duplicates.
func (g *Golden) Add(k Key, values []string) {
	tk := tupleKey(values)
	for _, e := range g.Entries {
		if e.Key == k && tupleKey(e.Values) == tk {
			return
		}
	}
	v := make([]string, len(values))
	copy(v, values)
	g.Entries = append(g.Entries, Entry{Key: k, Values: v})
}

// DistinctTuples returns the set of distinct correct value tuples, used by
// the R-P curve where duplicates are eliminated.
func (g *Golden) DistinctTuples() map[string]bool {
	out := make(map[string]bool, len(g.Entries))
	for _, e := range g.Entries {
		out[tupleKey(e.Values)] = true
	}
	return out
}

// keys returns the set of golden occurrence keys.
func (g *Golden) keys() map[Key]bool {
	out := make(map[Key]bool, len(g.Entries))
	for _, e := range g.Entries {
		out[e.Key] = true
	}
	return out
}

func tupleKey(values []string) string { return strings.Join(values, "\x1f") }

// PRF bundles precision, recall and F-measure.
type PRF struct {
	Precision float64
	Recall    float64
	F         float64
}

func prf(p, r float64) PRF {
	f := 0.0
	if p+r > 0 {
		f = 2 * p * r / (p + r)
	}
	return PRF{Precision: p, Recall: r, F: f}
}

// InstancePRF scores per-occurrence answers against the golden standard.
// An instance is correct when its (source, row) is a golden occurrence
// and — if requireValues — its projected values equal one of the
// acceptable golden projections for that row. Keyword baselines return
// whole rows, so they are scored with requireValues=false (row identity
// suffices); mapping-based systems are scored with requireValues=true.
//
// Precision counts over all returned instances (duplicates kept, §7.1);
// recall counts golden entries covered by at least one correct instance.
func InstancePRF(instances []answer.Instance, g *Golden, requireValues bool) PRF {
	if len(instances) == 0 {
		if len(g.Entries) == 0 {
			return prf(1, 1)
		}
		return prf(0, 0)
	}
	goldenKeys := g.keys()
	// entryIndex maps (key, values) to entry positions for coverage.
	type ekey struct {
		k  Key
		tk string
	}
	entryIdx := make(map[ekey][]int, len(g.Entries))
	keyEntries := make(map[Key][]int)
	for i, e := range g.Entries {
		ek := ekey{e.Key, tupleKey(e.Values)}
		entryIdx[ek] = append(entryIdx[ek], i)
		keyEntries[e.Key] = append(keyEntries[e.Key], i)
	}
	correct := 0
	covered := make(map[int]bool)
	for _, inst := range instances {
		k := Key{inst.Source, inst.Row}
		if !goldenKeys[k] {
			continue
		}
		if requireValues {
			hits := entryIdx[ekey{k, tupleKey(inst.Values)}]
			if len(hits) == 0 {
				continue
			}
			correct++
			for _, i := range hits {
				covered[i] = true
			}
			continue
		}
		correct++
		for _, i := range keyEntries[k] {
			covered[i] = true
		}
	}
	p := float64(correct) / float64(len(instances))
	r := 1.0
	if len(g.Entries) > 0 {
		r = float64(len(covered)) / float64(len(g.Entries))
	}
	return prf(p, r)
}

// RankedPRF scores a deduplicated ranked answer list against the distinct
// golden tuples (used when comparing ranking-capable systems end to end).
func RankedPRF(ranked []answer.Answer, goldenTuples map[string]bool) PRF {
	if len(ranked) == 0 {
		if len(goldenTuples) == 0 {
			return prf(1, 1)
		}
		return prf(0, 0)
	}
	correct := 0
	seen := make(map[string]bool)
	for _, a := range ranked {
		k := tupleKey(a.Values)
		if goldenTuples[k] {
			correct++
			seen[k] = true
		}
	}
	p := float64(correct) / float64(len(ranked))
	r := 1.0
	if len(goldenTuples) > 0 {
		r = float64(len(seen)) / float64(len(goldenTuples))
	}
	return prf(p, r)
}

// RPPoint is one point of a recall-precision curve.
type RPPoint struct {
	Recall    float64
	Precision float64
}

// RPCurve computes precision at the given recall levels from a ranked
// answer list (probabilities descending; duplicates already combined):
// for each target recall r, take the smallest K whose top-K answers reach
// recall r among the distinct golden tuples, and report the precision of
// those K answers. Unreachable recall levels report precision 0.
func RPCurve(ranked []answer.Answer, goldenTuples map[string]bool, levels []float64) []RPPoint {
	total := len(goldenTuples)
	out := make([]RPPoint, 0, len(levels))
	if total == 0 {
		for _, r := range levels {
			out = append(out, RPPoint{Recall: r, Precision: 0})
		}
		return out
	}
	// Prefix statistics.
	correctAt := make([]int, len(ranked)+1) // distinct golden tuples found in top-K
	matchedAt := make([]int, len(ranked)+1) // answers in top-K that are golden
	seen := make(map[string]bool)
	for i, a := range ranked {
		k := tupleKey(a.Values)
		correctAt[i+1] = correctAt[i]
		matchedAt[i+1] = matchedAt[i]
		if goldenTuples[k] {
			matchedAt[i+1]++
			if !seen[k] {
				seen[k] = true
				correctAt[i+1]++
			}
		}
	}
	for _, r := range levels {
		need := int(r*float64(total) + 1e-9)
		if need < 1 {
			need = 1
		}
		k := sort.Search(len(ranked)+1, func(k int) bool { return correctAt[k] >= need })
		if k > len(ranked) {
			out = append(out, RPPoint{Recall: r, Precision: 0})
			continue
		}
		if k == 0 {
			k = 1
		}
		out = append(out, RPPoint{Recall: r, Precision: float64(matchedAt[k]) / float64(k)})
	}
	return out
}

// AveragePrecision integrates the R-P curve at the standard 10 recall
// levels (0.1 … 1.0), a single ranking-quality number: systems that rank
// correct answers higher score closer to 1 even when their answer sets
// (and hence precision/recall) are identical.
func AveragePrecision(ranked []answer.Answer, goldenTuples map[string]bool) float64 {
	levels := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	pts := RPCurve(ranked, goldenTuples, levels)
	sum := 0.0
	for _, p := range pts {
		sum += p.Precision
	}
	return sum / float64(len(pts))
}

// ClusteringPRF computes pairwise clustering precision/recall of a
// mediated schema against a golden concept labelling of attribute names
// (§7.5): precision is the fraction of same-cluster attribute pairs whose
// golden concepts agree; recall is the fraction of same-concept pairs the
// schema puts together. Attributes without a golden concept are ignored.
func ClusteringPRF(m *schema.MediatedSchema, goldenConcept map[string]string) PRF {
	names := make([]string, 0)
	for _, n := range m.Names() {
		if goldenConcept[n] != "" {
			names = append(names, n)
		}
	}
	togetherCorrect, together, same := 0, 0, 0
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := names[i], names[j]
			inSame := m.ClusterOf(a).Contains(b)
			conceptSame := goldenConcept[a] == goldenConcept[b]
			if inSame {
				together++
				if conceptSame {
					togetherCorrect++
				}
			}
			if conceptSame {
				same++
			}
		}
	}
	p, r := 0.0, 0.0
	if together > 0 {
		p = float64(togetherCorrect) / float64(together)
	} else if same == 0 {
		p = 1 // nothing clustered, nothing should be: vacuously precise
	}
	if same > 0 {
		r = float64(togetherCorrect) / float64(same)
	} else {
		r = 1
	}
	return prf(p, r)
}

// PMedClusteringPRF scores a probabilistic mediated schema: per-schema
// measures weighted by the schema probabilities (§7.5).
func PMedClusteringPRF(pmed *schema.PMedSchema, goldenConcept map[string]string) PRF {
	var p, r float64
	for i, m := range pmed.Schemas {
		s := ClusteringPRF(m, goldenConcept)
		p += pmed.Probs[i] * s.Precision
		r += pmed.Probs[i] * s.Recall
	}
	return prf(p, r)
}

// Mean averages a list of PRFs (used for the 10-query-per-domain reports).
func Mean(scores []PRF) PRF {
	if len(scores) == 0 {
		return PRF{}
	}
	var p, r, f float64
	for _, s := range scores {
		p += s.Precision
		r += s.Recall
		f += s.F
	}
	n := float64(len(scores))
	return PRF{Precision: p / n, Recall: r / n, F: f / n}
}

// TopKPrecision returns the precision of the top-k ranked answers against
// the distinct golden tuples (the paper's ranking goal: "rank correct
// answers higher ... high Top-k precision", §3). k larger than the list
// uses the whole list; an empty list scores 0 unless the golden set is
// empty too.
func TopKPrecision(ranked []answer.Answer, goldenTuples map[string]bool, k int) float64 {
	if len(ranked) == 0 {
		if len(goldenTuples) == 0 {
			return 1
		}
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	if k <= 0 {
		return 0
	}
	correct := 0
	for _, a := range ranked[:k] {
		if goldenTuples[tupleKey(a.Values)] {
			correct++
		}
	}
	return float64(correct) / float64(k)
}
