package eval

import (
	"math"
	"testing"

	"udi/internal/answer"
	"udi/internal/schema"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func golden(rows map[Key][]string) *Golden { return NewGolden(rows) }

func TestInstancePRFBasic(t *testing.T) {
	g := golden(map[Key][]string{
		{"s1", 0}: {"Alice"},
		{"s1", 1}: {"Bob"},
		{"s2", 0}: {"Carol"},
	})
	instances := []answer.Instance{
		{Source: "s1", Row: 0, Values: []string{"Alice"}, Prob: 1}, // correct
		{Source: "s1", Row: 1, Values: []string{"WRONG"}, Prob: 1}, // wrong values
		{Source: "s3", Row: 5, Values: []string{"Eve"}, Prob: 1},   // wrong row
	}
	s := InstancePRF(instances, g, true)
	if !almostEq(s.Precision, 1.0/3) || !almostEq(s.Recall, 1.0/3) {
		t.Errorf("PRF = %+v", s)
	}
	// Without value checking, the s1 row 1 instance becomes correct.
	s = InstancePRF(instances, g, false)
	if !almostEq(s.Precision, 2.0/3) || !almostEq(s.Recall, 2.0/3) {
		t.Errorf("row-identity PRF = %+v", s)
	}
}

func TestInstancePRFDuplicatesKept(t *testing.T) {
	g := golden(map[Key][]string{{"s1", 0}: {"A"}})
	instances := []answer.Instance{
		{Source: "s1", Row: 0, Values: []string{"A"}},
		{Source: "s1", Row: 0, Values: []string{"A"}},
		{Source: "s1", Row: 0, Values: []string{"B"}},
	}
	s := InstancePRF(instances, g, true)
	// Precision counts all three returned instances; the duplicate correct
	// ones both count.
	if !almostEq(s.Precision, 2.0/3) || !almostEq(s.Recall, 1) {
		t.Errorf("PRF = %+v", s)
	}
}

func TestInstancePRFEmpty(t *testing.T) {
	s := InstancePRF(nil, golden(map[Key][]string{{"s", 0}: {"x"}}), true)
	if s.Precision != 0 || s.Recall != 0 || s.F != 0 {
		t.Errorf("empty result PRF = %+v", s)
	}
	s = InstancePRF(nil, golden(nil), true)
	if s.Precision != 1 || s.Recall != 1 {
		t.Errorf("empty/empty PRF = %+v", s)
	}
	s = InstancePRF([]answer.Instance{{Source: "s", Row: 0, Values: []string{"x"}}}, golden(nil), true)
	if s.Precision != 0 || s.Recall != 1 {
		t.Errorf("spurious-answer PRF = %+v", s)
	}
}

func TestFMeasure(t *testing.T) {
	s := prf(1, 0.5)
	if !almostEq(s.F, 2*1*0.5/1.5) {
		t.Errorf("F = %f", s.F)
	}
	if prf(0, 0).F != 0 {
		t.Error("F(0,0) != 0")
	}
}

func TestRankedPRF(t *testing.T) {
	goldenTuples := map[string]bool{"A": true, "B": true}
	ranked := []answer.Answer{
		{Values: []string{"A"}, Prob: 0.9},
		{Values: []string{"X"}, Prob: 0.5},
	}
	s := RankedPRF(ranked, goldenTuples)
	if !almostEq(s.Precision, 0.5) || !almostEq(s.Recall, 0.5) {
		t.Errorf("RankedPRF = %+v", s)
	}
}

func TestRPCurve(t *testing.T) {
	goldenTuples := map[string]bool{"A": true, "B": true, "C": true, "D": true}
	ranked := []answer.Answer{
		{Values: []string{"A"}, Prob: 0.9},
		{Values: []string{"X"}, Prob: 0.8},
		{Values: []string{"B"}, Prob: 0.7},
		{Values: []string{"C"}, Prob: 0.6},
		{Values: []string{"Y"}, Prob: 0.5},
		{Values: []string{"D"}, Prob: 0.4},
	}
	pts := RPCurve(ranked, goldenTuples, []float64{0.25, 0.5, 0.75, 1.0})
	// recall 0.25 -> need 1 correct -> K=1 -> precision 1.
	if !almostEq(pts[0].Precision, 1) {
		t.Errorf("P@R=0.25 = %f", pts[0].Precision)
	}
	// recall 0.5 -> need 2 -> K=3 (A,X,B) -> precision 2/3.
	if !almostEq(pts[1].Precision, 2.0/3) {
		t.Errorf("P@R=0.5 = %f", pts[1].Precision)
	}
	// recall 0.75 -> need 3 -> K=4 -> precision 3/4.
	if !almostEq(pts[2].Precision, 0.75) {
		t.Errorf("P@R=0.75 = %f", pts[2].Precision)
	}
	// recall 1.0 -> need 4 -> K=6 -> precision 4/6.
	if !almostEq(pts[3].Precision, 4.0/6) {
		t.Errorf("P@R=1.0 = %f", pts[3].Precision)
	}
}

func TestRPCurveUnreachable(t *testing.T) {
	goldenTuples := map[string]bool{"A": true, "B": true}
	ranked := []answer.Answer{{Values: []string{"A"}, Prob: 0.9}}
	pts := RPCurve(ranked, goldenTuples, []float64{1.0})
	if pts[0].Precision != 0 {
		t.Errorf("unreachable recall precision = %f", pts[0].Precision)
	}
	// Empty golden: all levels precision 0 by convention.
	pts = RPCurve(ranked, map[string]bool{}, []float64{0.5})
	if pts[0].Precision != 0 {
		t.Errorf("empty-golden precision = %f", pts[0].Precision)
	}
}

func medSchema(clusters ...[]string) *schema.MediatedSchema {
	var attrs []schema.MediatedAttr
	for _, c := range clusters {
		attrs = append(attrs, schema.NewMediatedAttr(c...))
	}
	return schema.MustNewMediatedSchema(attrs)
}

func TestClusteringPRF(t *testing.T) {
	concepts := map[string]string{
		"author": "author", "authors": "author", "writer": "author",
		"title": "title", "name": "title",
	}
	// Perfect clustering.
	m := medSchema([]string{"author", "authors", "writer"}, []string{"title", "name"})
	s := ClusteringPRF(m, concepts)
	if s.Precision != 1 || s.Recall != 1 {
		t.Errorf("perfect clustering PRF = %+v", s)
	}
	// Under-clustered: writer separated. Same-cluster pairs: (author,
	// authors), (title,name) both correct -> precision 1. Golden same
	// pairs: 3 author pairs + 1 title pair = 4; found 2 -> recall 0.5.
	m = medSchema([]string{"author", "authors"}, []string{"writer"}, []string{"title", "name"})
	s = ClusteringPRF(m, concepts)
	if s.Precision != 1 || !almostEq(s.Recall, 0.5) {
		t.Errorf("under-clustered PRF = %+v", s)
	}
	// Over-clustered: author group absorbs title.
	m = medSchema([]string{"author", "authors", "writer", "title", "name"})
	s = ClusteringPRF(m, concepts)
	// together pairs = C(5,2)=10, correct = 3+1 = 4 -> precision 0.4; recall 1.
	if !almostEq(s.Precision, 0.4) || s.Recall != 1 {
		t.Errorf("over-clustered PRF = %+v", s)
	}
}

func TestClusteringPRFIgnoresUnlabelled(t *testing.T) {
	concepts := map[string]string{"a": "x", "b": "x"}
	m := medSchema([]string{"a", "b", "mystery"})
	s := ClusteringPRF(m, concepts)
	if s.Precision != 1 || s.Recall != 1 {
		t.Errorf("unlabelled attr not ignored: %+v", s)
	}
}

func TestClusteringPRFAllSingletons(t *testing.T) {
	concepts := map[string]string{"a": "x", "b": "y"}
	m := medSchema([]string{"a"}, []string{"b"})
	s := ClusteringPRF(m, concepts)
	// Nothing clustered and nothing should be: vacuous precision and recall.
	if s.Precision != 1 || s.Recall != 1 {
		t.Errorf("all-singleton PRF = %+v", s)
	}
}

func TestPMedClusteringPRF(t *testing.T) {
	concepts := map[string]string{"a": "x", "b": "x", "c": "y"}
	good := medSchema([]string{"a", "b"}, []string{"c"})
	bad := medSchema([]string{"a", "b", "c"})
	pmed, _ := schema.NewPMedSchema([]*schema.MediatedSchema{good, bad}, []float64{0.7, 0.3})
	s := PMedClusteringPRF(pmed, concepts)
	// good: P=1, R=1. bad: together pairs 3, correct 1 -> P=1/3, R=1.
	wantP := 0.7*1 + 0.3*(1.0/3)
	if !almostEq(s.Precision, wantP) || !almostEq(s.Recall, 1) {
		t.Errorf("PMed PRF = %+v, want P=%f", s, wantP)
	}
}

func TestMean(t *testing.T) {
	m := Mean([]PRF{{1, 1, 1}, {0, 0, 0}})
	if !almostEq(m.Precision, 0.5) || !almostEq(m.Recall, 0.5) || !almostEq(m.F, 0.5) {
		t.Errorf("Mean = %+v", m)
	}
	if z := Mean(nil); z.Precision != 0 || z.Recall != 0 {
		t.Errorf("Mean(nil) = %+v", z)
	}
}

func TestGoldenDistinctTuples(t *testing.T) {
	g := golden(map[Key][]string{
		{"s1", 0}: {"A"},
		{"s2", 3}: {"A"},
		{"s1", 1}: {"B"},
	})
	d := g.DistinctTuples()
	if len(d) != 2 || !d["A"] || !d["B"] {
		t.Errorf("DistinctTuples = %v", d)
	}
}

func TestTopKPrecision(t *testing.T) {
	goldenTuples := map[string]bool{"A": true, "B": true}
	ranked := []answer.Answer{
		{Values: []string{"A"}, Prob: 0.9},
		{Values: []string{"X"}, Prob: 0.8},
		{Values: []string{"B"}, Prob: 0.7},
	}
	if p := TopKPrecision(ranked, goldenTuples, 1); !almostEq(p, 1) {
		t.Errorf("P@1 = %f", p)
	}
	if p := TopKPrecision(ranked, goldenTuples, 2); !almostEq(p, 0.5) {
		t.Errorf("P@2 = %f", p)
	}
	if p := TopKPrecision(ranked, goldenTuples, 10); !almostEq(p, 2.0/3) {
		t.Errorf("P@10 (clamped) = %f", p)
	}
	if p := TopKPrecision(nil, goldenTuples, 5); p != 0 {
		t.Errorf("empty ranked = %f", p)
	}
	if p := TopKPrecision(nil, map[string]bool{}, 5); p != 1 {
		t.Errorf("empty/empty = %f", p)
	}
	if p := TopKPrecision(ranked, goldenTuples, 0); p != 0 {
		t.Errorf("k=0 = %f", p)
	}
}
