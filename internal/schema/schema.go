// Package schema defines the data model shared by every UDI component:
// data sources (single-table schemas with instances, per the paper's §3
// setting), corpora of sources from one domain, and mediated schemas
// (clusterings of source attribute names).
//
// Following the paper, an attribute is identified by its name: the set of
// all source attributes A is the union of the attribute names appearing in
// the sources, and a mediated attribute is a set of names. Source schemas
// are single tables; multi-table sources are future work in the paper (§9).
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Source is one data source: a single-table schema plus its instance.
type Source struct {
	Name  string     // unique source identifier within a corpus
	Attrs []string   // column names, unique within the source
	Rows  [][]string // each row has exactly len(Attrs) values

	attrIdx map[string]int
}

// NewSource validates and builds a Source. It rejects duplicate attribute
// names, empty attribute names, and rows whose width differs from the
// schema.
func NewSource(name string, attrs []string, rows [][]string) (*Source, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: source name must be non-empty")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("schema: source %q has no attributes", name)
	}
	idx := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("schema: source %q has an empty attribute name", name)
		}
		if _, dup := idx[a]; dup {
			return nil, fmt.Errorf("schema: source %q has duplicate attribute %q", name, a)
		}
		idx[a] = i
	}
	for r, row := range rows {
		if len(row) != len(attrs) {
			return nil, fmt.Errorf("schema: source %q row %d has %d values, want %d",
				name, r, len(row), len(attrs))
		}
	}
	return &Source{Name: name, Attrs: attrs, Rows: rows, attrIdx: idx}, nil
}

// MustNewSource is NewSource that panics on error; for tests and examples.
func MustNewSource(name string, attrs []string, rows [][]string) *Source {
	s, err := NewSource(name, attrs, rows)
	if err != nil {
		panic(err)
	}
	return s
}

// AttrIndex returns the column position of attr, or -1 if absent.
func (s *Source) AttrIndex(attr string) int {
	if s.attrIdx == nil {
		s.attrIdx = make(map[string]int, len(s.Attrs))
		for i, a := range s.Attrs {
			s.attrIdx[a] = i
		}
	}
	if i, ok := s.attrIdx[attr]; ok {
		return i
	}
	return -1
}

// HasAttr reports whether the source schema contains attr.
func (s *Source) HasAttr(attr string) bool { return s.AttrIndex(attr) >= 0 }

// Corpus is a set of sources assumed to be roughly from the same domain.
type Corpus struct {
	Domain  string
	Sources []*Source
}

// NewCorpus validates source-name uniqueness and builds a Corpus.
func NewCorpus(domain string, sources []*Source) (*Corpus, error) {
	seen := make(map[string]bool, len(sources))
	for _, s := range sources {
		if seen[s.Name] {
			return nil, fmt.Errorf("schema: duplicate source name %q in corpus %q", s.Name, domain)
		}
		seen[s.Name] = true
	}
	return &Corpus{Domain: domain, Sources: sources}, nil
}

// AllAttrs returns the sorted union of attribute names across all sources
// (the set A of the paper).
func (c *Corpus) AllAttrs() []string {
	seen := make(map[string]bool)
	for _, s := range c.Sources {
		for _, a := range s.Attrs {
			seen[a] = true
		}
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// AttrFrequency returns, for each attribute name, the fraction of sources
// whose schema contains it: f(a_j) = |{i : a_j ∈ S_i}| / n (Algorithm 1,
// step 2).
func (c *Corpus) AttrFrequency() map[string]float64 {
	counts := make(map[string]int)
	for _, s := range c.Sources {
		for _, a := range s.Attrs {
			counts[a]++
		}
	}
	n := float64(len(c.Sources))
	freqs := make(map[string]float64, len(counts))
	for a, k := range counts {
		freqs[a] = float64(k) / n
	}
	return freqs
}

// FrequentAttrs returns the sorted attribute names whose frequency is at
// least theta (Algorithm 1, step 3).
func (c *Corpus) FrequentAttrs(theta float64) []string {
	var out []string
	for a, f := range c.AttrFrequency() {
		if f >= theta {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// Prefix returns a corpus containing only the first n sources; used for
// the setup-scaling experiment (Figure 7). If n exceeds the corpus size the
// whole corpus is returned.
func (c *Corpus) Prefix(n int) *Corpus {
	if n > len(c.Sources) {
		n = len(c.Sources)
	}
	return &Corpus{Domain: c.Domain, Sources: c.Sources[:n]}
}

// MediatedAttr is one attribute of a mediated schema: a set of source
// attribute names, stored sorted for canonical comparison.
type MediatedAttr []string

// NewMediatedAttr copies and sorts the names.
func NewMediatedAttr(names ...string) MediatedAttr {
	m := make(MediatedAttr, len(names))
	copy(m, names)
	sort.Strings(m)
	return m
}

// Contains reports whether the mediated attribute includes name.
func (m MediatedAttr) Contains(name string) bool {
	i := sort.SearchStrings(m, name)
	return i < len(m) && m[i] == name
}

// Key returns a canonical string identity for the attribute set.
func (m MediatedAttr) Key() string { return strings.Join(m, "\x1f") }

// String renders the cluster as {a, b, c}.
func (m MediatedAttr) String() string {
	return "{" + strings.Join(m, ", ") + "}"
}

// Equal reports set equality.
func (m MediatedAttr) Equal(o MediatedAttr) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// MediatedSchema is a deterministic mediated schema: a partition of a set
// of source attribute names into disjoint clusters, stored in canonical
// order (clusters sorted by their first element).
type MediatedSchema struct {
	Attrs []MediatedAttr
}

// NewMediatedSchema validates that the clusters are disjoint and non-empty
// and returns the schema in canonical order.
func NewMediatedSchema(attrs []MediatedAttr) (*MediatedSchema, error) {
	seen := make(map[string]bool)
	canon := make([]MediatedAttr, 0, len(attrs))
	for _, a := range attrs {
		if len(a) == 0 {
			return nil, fmt.Errorf("schema: empty mediated attribute")
		}
		sorted := NewMediatedAttr(a...)
		for _, name := range sorted {
			if seen[name] {
				return nil, fmt.Errorf("schema: attribute %q appears in two clusters", name)
			}
			seen[name] = true
		}
		canon = append(canon, sorted)
	}
	sort.Slice(canon, func(i, j int) bool { return canon[i][0] < canon[j][0] })
	return &MediatedSchema{Attrs: canon}, nil
}

// MustNewMediatedSchema panics on error; for tests and examples.
func MustNewMediatedSchema(attrs []MediatedAttr) *MediatedSchema {
	m, err := NewMediatedSchema(attrs)
	if err != nil {
		panic(err)
	}
	return m
}

// ClusterOf returns the mediated attribute containing name, or nil. A query
// attribute a is replaced by its cluster when answering (paper §3).
func (m *MediatedSchema) ClusterOf(name string) MediatedAttr {
	for _, a := range m.Attrs {
		if a.Contains(name) {
			return a
		}
	}
	return nil
}

// Names returns the sorted union of all clustered attribute names.
func (m *MediatedSchema) Names() []string {
	var out []string
	for _, a := range m.Attrs {
		out = append(out, a...)
	}
	sort.Strings(out)
	return out
}

// Key returns a canonical identity for the whole clustering, used to
// deduplicate mediated schemas produced from different uncertain-edge
// subsets (Algorithm 1, step 8).
func (m *MediatedSchema) Key() string {
	parts := make([]string, len(m.Attrs))
	for i, a := range m.Attrs {
		parts[i] = a.Key()
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x1e")
}

// Equal reports whether two mediated schemas are the same clustering.
func (m *MediatedSchema) Equal(o *MediatedSchema) bool { return m.Key() == o.Key() }

// ConsistentWith reports whether the mediated schema is consistent with
// source s per Definition 4.1: no pair of attributes of s appears in the
// same cluster.
func (m *MediatedSchema) ConsistentWith(s *Source) bool {
	for _, cluster := range m.Attrs {
		n := 0
		for _, name := range cluster {
			if s.HasAttr(name) {
				n++
				if n > 1 {
					return false
				}
			}
		}
	}
	return true
}

// String renders the schema as a list of clusters.
func (m *MediatedSchema) String() string {
	parts := make([]string, len(m.Attrs))
	for i, a := range m.Attrs {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// PMedSchema is a probabilistic mediated schema (Definition 3.1): a set of
// mediated schemas with probabilities in (0,1] summing to 1, each a
// different clustering.
type PMedSchema struct {
	Schemas []*MediatedSchema
	Probs   []float64
}

// NewPMedSchema validates Definition 3.1: probabilities in (0,1] summing to
// 1 (within tolerance) and pairwise-distinct clusterings.
func NewPMedSchema(schemas []*MediatedSchema, probs []float64) (*PMedSchema, error) {
	if len(schemas) == 0 || len(schemas) != len(probs) {
		return nil, fmt.Errorf("schema: need equal non-zero schemas (%d) and probs (%d)",
			len(schemas), len(probs))
	}
	sum := 0.0
	seen := make(map[string]bool)
	for i, p := range probs {
		if p <= 0 || p > 1 {
			return nil, fmt.Errorf("schema: probability %g out of (0,1]", p)
		}
		sum += p
		k := schemas[i].Key()
		if seen[k] {
			return nil, fmt.Errorf("schema: duplicate clustering in p-med-schema")
		}
		seen[k] = true
	}
	if sum < 1-1e-6 || sum > 1+1e-6 {
		return nil, fmt.Errorf("schema: probabilities sum to %g, want 1", sum)
	}
	return &PMedSchema{Schemas: schemas, Probs: probs}, nil
}

// Len returns the number of possible mediated schemas.
func (p *PMedSchema) Len() int { return len(p.Schemas) }

// String lists each schema with its probability.
func (p *PMedSchema) String() string {
	var b strings.Builder
	for i, m := range p.Schemas {
		fmt.Fprintf(&b, "P=%.3f  %s\n", p.Probs[i], m)
	}
	return b.String()
}
