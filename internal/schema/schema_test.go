package schema

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSourceValidation(t *testing.T) {
	if _, err := NewSource("", []string{"a"}, nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSource("s", nil, nil); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := NewSource("s", []string{"a", "a"}, nil); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewSource("s", []string{"a", ""}, nil); err == nil {
		t.Error("empty attribute accepted")
	}
	if _, err := NewSource("s", []string{"a"}, [][]string{{"x", "y"}}); err == nil {
		t.Error("wide row accepted")
	}
	s, err := NewSource("s", []string{"a", "b"}, [][]string{{"1", "2"}})
	if err != nil {
		t.Fatalf("valid source rejected: %v", err)
	}
	if s.AttrIndex("b") != 1 || s.AttrIndex("z") != -1 {
		t.Error("AttrIndex wrong")
	}
	if !s.HasAttr("a") || s.HasAttr("c") {
		t.Error("HasAttr wrong")
	}
}

func TestAttrIndexLazyInit(t *testing.T) {
	// A Source built by literal (no attrIdx) must still resolve indexes.
	s := &Source{Name: "s", Attrs: []string{"x", "y"}}
	if s.AttrIndex("y") != 1 {
		t.Error("lazy index failed")
	}
}

func TestCorpusFrequency(t *testing.T) {
	c, err := NewCorpus("d", []*Source{
		MustNewSource("s1", []string{"name", "phone"}, nil),
		MustNewSource("s2", []string{"name", "addr"}, nil),
		MustNewSource("s3", []string{"name", "phone", "addr"}, nil),
		MustNewSource("s4", []string{"name"}, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := c.AttrFrequency()
	if f["name"] != 1 || f["phone"] != 0.5 || f["addr"] != 0.5 {
		t.Errorf("frequencies wrong: %v", f)
	}
	fr := c.FrequentAttrs(0.6)
	if len(fr) != 1 || fr[0] != "name" {
		t.Errorf("FrequentAttrs(0.6) = %v", fr)
	}
	all := c.AllAttrs()
	want := []string{"addr", "name", "phone"}
	if strings.Join(all, ",") != strings.Join(want, ",") {
		t.Errorf("AllAttrs = %v", all)
	}
}

func TestCorpusDuplicateSource(t *testing.T) {
	_, err := NewCorpus("d", []*Source{
		MustNewSource("s", []string{"a"}, nil),
		MustNewSource("s", []string{"b"}, nil),
	})
	if err == nil {
		t.Error("duplicate source names accepted")
	}
}

func TestCorpusPrefix(t *testing.T) {
	c, _ := NewCorpus("d", []*Source{
		MustNewSource("s1", []string{"a"}, nil),
		MustNewSource("s2", []string{"a"}, nil),
	})
	if got := c.Prefix(1); len(got.Sources) != 1 {
		t.Errorf("Prefix(1) size = %d", len(got.Sources))
	}
	if got := c.Prefix(10); len(got.Sources) != 2 {
		t.Errorf("Prefix(10) size = %d", len(got.Sources))
	}
}

func TestMediatedAttr(t *testing.T) {
	a := NewMediatedAttr("phone", "hPhone", "oPhone")
	if !a.Contains("hPhone") || a.Contains("zap") {
		t.Error("Contains wrong")
	}
	b := NewMediatedAttr("oPhone", "phone", "hPhone")
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Error("order must not matter")
	}
	if a.Equal(NewMediatedAttr("phone")) {
		t.Error("different sizes equal")
	}
	if a.String() != "{hPhone, oPhone, phone}" {
		t.Errorf("String = %q", a.String())
	}
}

func TestMediatedSchemaValidation(t *testing.T) {
	if _, err := NewMediatedSchema([]MediatedAttr{{}}); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := NewMediatedSchema([]MediatedAttr{
		NewMediatedAttr("a", "b"), NewMediatedAttr("b", "c"),
	}); err == nil {
		t.Error("overlapping clusters accepted")
	}
	m, err := NewMediatedSchema([]MediatedAttr{
		NewMediatedAttr("phone", "hPhone"), NewMediatedAttr("name"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ClusterOf("phone"); !got.Equal(NewMediatedAttr("hPhone", "phone")) {
		t.Errorf("ClusterOf(phone) = %v", got)
	}
	if m.ClusterOf("zap") != nil {
		t.Error("ClusterOf(zap) should be nil")
	}
	names := m.Names()
	if strings.Join(names, ",") != "hPhone,name,phone" {
		t.Errorf("Names = %v", names)
	}
}

func TestMediatedSchemaKeyCanonical(t *testing.T) {
	m1 := MustNewMediatedSchema([]MediatedAttr{
		NewMediatedAttr("a", "b"), NewMediatedAttr("c"),
	})
	m2 := MustNewMediatedSchema([]MediatedAttr{
		NewMediatedAttr("c"), NewMediatedAttr("b", "a"),
	})
	if !m1.Equal(m2) {
		t.Error("same clustering, different construction order, not Equal")
	}
	m3 := MustNewMediatedSchema([]MediatedAttr{
		NewMediatedAttr("a"), NewMediatedAttr("b"), NewMediatedAttr("c"),
	})
	if m1.Equal(m3) {
		t.Error("different clusterings Equal")
	}
}

func TestConsistency(t *testing.T) {
	// Definition 4.1: M is consistent with S iff no two attrs of S share a
	// cluster in M.
	s := MustNewSource("s", []string{"issue", "issn"}, nil)
	together := MustNewMediatedSchema([]MediatedAttr{NewMediatedAttr("issue", "issn")})
	apart := MustNewMediatedSchema([]MediatedAttr{
		NewMediatedAttr("issue"), NewMediatedAttr("issn"),
	})
	if together.ConsistentWith(s) {
		t.Error("grouping co-occurring attrs must be inconsistent")
	}
	if !apart.ConsistentWith(s) {
		t.Error("separating co-occurring attrs must be consistent")
	}
	// A schema mentioning attrs absent from S is vacuously consistent.
	other := MustNewMediatedSchema([]MediatedAttr{NewMediatedAttr("x", "y")})
	if !other.ConsistentWith(s) {
		t.Error("unrelated schema must be consistent")
	}
}

func TestPMedSchemaValidation(t *testing.T) {
	m1 := MustNewMediatedSchema([]MediatedAttr{NewMediatedAttr("a", "b")})
	m2 := MustNewMediatedSchema([]MediatedAttr{NewMediatedAttr("a"), NewMediatedAttr("b")})
	if _, err := NewPMedSchema([]*MediatedSchema{m1, m2}, []float64{0.7, 0.3}); err != nil {
		t.Errorf("valid p-med-schema rejected: %v", err)
	}
	if _, err := NewPMedSchema(nil, nil); err == nil {
		t.Error("empty p-med-schema accepted")
	}
	if _, err := NewPMedSchema([]*MediatedSchema{m1, m2}, []float64{0.5, 0.4}); err == nil {
		t.Error("non-unit sum accepted")
	}
	if _, err := NewPMedSchema([]*MediatedSchema{m1, m2}, []float64{1.2, -0.2}); err == nil {
		t.Error("out-of-range probability accepted")
	}
	if _, err := NewPMedSchema([]*MediatedSchema{m1, m1}, []float64{0.5, 0.5}); err == nil {
		t.Error("duplicate clustering accepted")
	}
}

// Property: ClusterOf finds every name in a randomly generated partition,
// and distinct names map to the same cluster iff they were placed together.
func TestClusterOfProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		// Random partition.
		k := 1 + rng.Intn(n)
		buckets := make([][]string, k)
		assign := make(map[string]int)
		for i, name := range names {
			b := i % k // ensure no empty bucket for first k names
			if i >= k {
				b = rng.Intn(k)
			}
			buckets[b] = append(buckets[b], name)
			assign[name] = b
		}
		var attrs []MediatedAttr
		for _, b := range buckets {
			if len(b) > 0 {
				attrs = append(attrs, NewMediatedAttr(b...))
			}
		}
		m := MustNewMediatedSchema(attrs)
		for _, name := range names {
			c := m.ClusterOf(name)
			if c == nil || !c.Contains(name) {
				return false
			}
			for _, other := range names {
				same := m.ClusterOf(other).Key() == c.Key()
				if same != (assign[other] == assign[name]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
