package storage

import (
	"fmt"
	"math/rand"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"udi/internal/schema"
)

func TestCompareValuesNumeric(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"2", "10", -1}, // numeric, not lexicographic
		{"10", "2", 1},
		{"3.5", "3.50", 0},
		{" 7 ", "7", 0},
		{"abc", "ABD", -1}, // case-insensitive lexicographic
		{"abc", "ABC", 0},
		{"", "", 0},
		{"9", "abc", -1}, // mixed: lexicographic, digits sort before letters
	}
	for _, c := range cases {
		if got := CompareValues(c.a, c.b); got != c.want {
			t.Errorf("CompareValues(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		v, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "HELLO", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "h__l", false},
		{"hello", "h___lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "", false},
		{"databases", "%data%base%", true},
		{"aaa", "a%a%a", true},
		{"ab", "a%a", false},
		{"x", "_", true},
	}
	for _, c := range cases {
		if got := Like(c.v, c.p); got != c.want {
			t.Errorf("Like(%q,%q) = %v, want %v", c.v, c.p, got, c.want)
		}
	}
}

// Property: a pattern equal to the value (no wildcards) always matches, and
// "%" matches everything.
func TestLikeProperties(t *testing.T) {
	prop := func(v string) bool {
		if !Like(v, "%") {
			return false
		}
		// Escape-free exact value acts as literal unless it contains
		// wildcard runes; skip those inputs.
		for _, r := range v {
			if r == '%' || r == '_' {
				return true
			}
		}
		return Like(v, v)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseOp(t *testing.T) {
	good := map[string]Op{
		"=": OpEq, "==": OpEq, "!=": OpNe, "<>": OpNe,
		"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
		"LIKE": OpLike, "like": OpLike,
	}
	for tok, want := range good {
		got, err := ParseOp(tok)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v, %v", tok, got, err)
		}
	}
	if _, err := ParseOp("~"); err == nil {
		t.Error("ParseOp(~) accepted")
	}
}

func TestOpEval(t *testing.T) {
	cases := []struct {
		op   Op
		cell string
		lit  string
		want bool
	}{
		{OpEq, "5", "5.0", true},
		{OpNe, "5", "6", true},
		{OpLt, "2", "10", true},
		{OpLe, "10", "10", true},
		{OpGt, "10", "2", true},
		{OpGe, "1", "2", false},
		{OpLike, "Database Systems", "%database%", true},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.cell, c.lit); got != c.want {
			t.Errorf("%v.Eval(%q,%q) = %v, want %v", c.op, c.cell, c.lit, got, c.want)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpLike.String() != "LIKE" || OpNe.String() != "!=" {
		t.Error("Op.String wrong")
	}
}

func testSource() *schema.Source {
	return schema.MustNewSource("people", []string{"name", "age", "city"}, [][]string{
		{"Alice", "30", "Springfield"},
		{"Bob", "25", "Shelbyville"},
		{"Carol", "35", "Springfield"},
	})
}

func TestTableSelect(t *testing.T) {
	tb := NewTable(testSource())
	rows, err := tb.Select([]string{"name"}, []Pred{{Attr: "city", Op: OpEq, Literal: "springfield"}})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"Alice"}, {"Carol"}}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("Select = %v, want %v", rows, want)
	}
	rows, err = tb.Select([]string{"name", "age"}, []Pred{
		{Attr: "age", Op: OpGt, Literal: "26"},
		{Attr: "city", Op: OpLike, Literal: "spring%"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want = [][]string{{"Alice", "30"}, {"Carol", "35"}}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("conjunction Select = %v, want %v", rows, want)
	}
}

func TestTableSelectMissingAttr(t *testing.T) {
	tb := NewTable(testSource())
	if _, err := tb.Select([]string{"salary"}, nil); err == nil {
		t.Error("missing projection attribute accepted")
	}
	if _, err := tb.Select([]string{"name"}, []Pred{{Attr: "salary", Op: OpEq, Literal: "1"}}); err == nil {
		t.Error("missing predicate attribute accepted")
	}
}

func TestTableSelectNoPreds(t *testing.T) {
	tb := NewTable(testSource())
	rows, err := tb.Select([]string{"city"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Errorf("full scan returned %d rows", len(rows))
	}
}

func testCorpus() *schema.Corpus {
	c, _ := schema.NewCorpus("test", []*schema.Source{
		schema.MustNewSource("s1", []string{"name", "phone"}, [][]string{
			{"Alice Smith", "123-4567"},
			{"Bob Jones", "765-4321"},
		}),
		schema.MustNewSource("s2", []string{"title", "year"}, [][]string{
			{"Alice in Wonderland", "1951"},
		}),
	})
	return c
}

func TestKeywordIndexAny(t *testing.T) {
	ix := BuildKeywordIndex(testCorpus())
	refs := ix.RowsWithAny([]string{"alice"})
	if len(refs) != 2 {
		t.Fatalf("RowsWithAny(alice) = %v, want 2 rows", refs)
	}
	if refs[0].Source != "s1" || refs[1].Source != "s2" {
		t.Errorf("refs = %v", refs)
	}
	if row := ix.Row(refs[0]); row[0] != "Alice Smith" {
		t.Errorf("Row = %v", row)
	}
}

func TestKeywordIndexAll(t *testing.T) {
	ix := BuildKeywordIndex(testCorpus())
	refs := ix.RowsWithAll([]string{"alice", "smith"})
	if len(refs) != 1 || refs[0].Source != "s1" || refs[0].Row != 0 {
		t.Fatalf("RowsWithAll = %v", refs)
	}
	if refs := ix.RowsWithAll([]string{"alice", "1951"}); len(refs) != 1 || refs[0].Source != "s2" {
		t.Fatalf("RowsWithAll cross-column = %v", refs)
	}
	if refs := ix.RowsWithAll(nil); refs != nil {
		t.Errorf("empty AND query returned %v", refs)
	}
	if refs := ix.RowsWithAll([]string{"alice", "zzz"}); len(refs) != 0 {
		t.Errorf("impossible AND query returned %v", refs)
	}
}

func TestKeywordIndexAttrTokens(t *testing.T) {
	ix := BuildKeywordIndex(testCorpus())
	if !ix.IsAttrToken("name", "s1") {
		t.Error("name should be an attr token of s1")
	}
	if ix.IsAttrToken("name", "s2") {
		t.Error("name is not an attr token of s2")
	}
	if !ix.IsAttrTokenAnywhere("year") || ix.IsAttrTokenAnywhere("alice") {
		t.Error("IsAttrTokenAnywhere wrong")
	}
}

func TestKeywordIndexStaleRef(t *testing.T) {
	ix := BuildKeywordIndex(testCorpus())
	if row := ix.Row(RowRef{"nope", 0}); row != nil {
		t.Error("stale source ref returned a row")
	}
	if row := ix.Row(RowRef{"s1", 99}); row != nil {
		t.Error("stale row ref returned a row")
	}
	if ix.SourceOf(RowRef{"s1", 0}) == nil {
		t.Error("SourceOf failed")
	}
}

func TestRowsWithAnyDedup(t *testing.T) {
	// Same token twice in one row must yield the row once; duplicate query
	// terms must not duplicate rows either.
	c, _ := schema.NewCorpus("d", []*schema.Source{
		schema.MustNewSource("s", []string{"a", "b"}, [][]string{{"x x", "x"}}),
	})
	ix := BuildKeywordIndex(c)
	if refs := ix.RowsWithAny([]string{"x", "x"}); len(refs) != 1 {
		t.Errorf("dedup failed: %v", refs)
	}
}

func BenchmarkTableScan(b *testing.B) {
	rows := make([][]string, 1000)
	for i := range rows {
		rows[i] = []string{"Alice", "30", "Springfield"}
	}
	tb := NewTable(schema.MustNewSource("s", []string{"name", "age", "city"}, rows))
	preds := []Pred{{Attr: "age", Op: OpGt, Literal: "26"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.Select([]string{"name"}, preds); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: Like agrees with a regexp reference implementation.
func TestLikeMatchesRegexpReference(t *testing.T) {
	ref := func(value, pattern string) bool {
		var re strings.Builder
		re.WriteString("(?is)^")
		for _, r := range pattern {
			switch r {
			case '%':
				re.WriteString("(?s).*")
			case '_':
				re.WriteString("(?s).")
			default:
				re.WriteString(regexp.QuoteMeta(string(r)))
			}
		}
		re.WriteString("$")
		ok, err := regexp.MatchString(re.String(), value)
		if err != nil {
			t.Fatalf("reference regexp: %v", err)
		}
		return ok
	}
	rng := rand.New(rand.NewSource(7))
	alphabet := []rune("ab%_ ")
	randStr := func(n int) string {
		out := make([]rune, rng.Intn(n))
		for i := range out {
			out[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(out)
	}
	for i := 0; i < 3000; i++ {
		v, p := randStr(8), randStr(6)
		// Values may not contain wildcard runes (they would be literals in
		// the value but wildcards in the reference translation of v? no —
		// only the pattern is translated; values are plain strings).
		if got, want := Like(v, p), ref(v, p); got != want {
			t.Fatalf("Like(%q,%q) = %v, reference %v", v, p, got, want)
		}
	}
}

// Property: CompareValues is a total preorder: antisymmetric and
// transitive over a random sample.
func TestCompareValuesOrdering(t *testing.T) {
	vals := []string{"", "0", "1", "2", "10", "-3", "3.5", "03.50", "abc", "ABC", "abd", " 7 ", "7", "x1", "9z"}
	for _, a := range vals {
		for _, b := range vals {
			ab, ba := CompareValues(a, b), CompareValues(b, a)
			if ab != -ba {
				t.Errorf("CompareValues(%q,%q)=%d but (%q,%q)=%d", a, b, ab, b, a, ba)
			}
			for _, c := range vals {
				if CompareValues(a, b) <= 0 && CompareValues(b, c) <= 0 && CompareValues(a, c) > 0 {
					t.Errorf("transitivity violated: %q <= %q <= %q but not %q <= %q", a, b, c, a, c)
				}
			}
		}
	}
}

// Property: indexed equality lookups return exactly what a full scan
// returns, for tables above and below the index threshold.
func TestIndexedSelectMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{10, 200} {
		rows := make([][]string, n)
		for i := range rows {
			rows[i] = []string{
				[]string{"Alice", "Bob", "Carol"}[rng.Intn(3)],
				[]string{"1", "2", "2.0", " 2 ", "x"}[rng.Intn(5)],
			}
		}
		tb := NewTable(schema.MustNewSource("s", []string{"name", "v"}, rows))
		for _, lit := range []string{"alice", "2", "2.00", "x", "zzz"} {
			preds := []Pred{{Attr: "v", Op: OpEq, Literal: lit}, {Attr: "name", Op: OpNe, Literal: "Bob"}}
			idxs, got, err := tb.SelectIdx([]string{"name", "v"}, preds)
			if err != nil {
				t.Fatal(err)
			}
			// Reference: plain scan.
			var wantIdx []int
			var want [][]string
			for r, row := range rows {
				if OpEq.Eval(row[1], lit) && OpNe.Eval(row[0], "Bob") {
					wantIdx = append(wantIdx, r)
					want = append(want, []string{row[0], row[1]})
				}
			}
			if !reflect.DeepEqual(idxs, wantIdx) || !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d lit=%q: indexed result differs from scan", n, lit)
			}
		}
	}
}

func TestIndexedSelectNumericEquality(t *testing.T) {
	rows := make([][]string, 100)
	for i := range rows {
		rows[i] = []string{"5.0"}
	}
	rows[7] = []string{"5"}
	rows[9] = []string{" 5 "}
	tb := NewTable(schema.MustNewSource("s", []string{"v"}, rows))
	idxs, _, err := tb.SelectIdx([]string{"v"}, []Pred{{Attr: "v", Op: OpEq, Literal: "5.00"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) != 100 {
		t.Errorf("numeric equality classes not canonicalized: %d rows", len(idxs))
	}
}

// TestBuildKeywordIndexParallelEquivalence requires the sharded parallel
// build to produce the same structures as the serial one — including
// postings order, which the merge preserves by walking shards in corpus
// order.
func TestBuildKeywordIndexParallelEquivalence(t *testing.T) {
	var sources []*schema.Source
	for i := 0; i < 9; i++ {
		sources = append(sources, schema.MustNewSource(
			fmt.Sprintf("s%d", i),
			[]string{"name", "note"},
			[][]string{
				{fmt.Sprintf("ann%d", i), "fast red car"},
				{"bob", fmt.Sprintf("blue bike %d", i)},
			}))
	}
	c, err := schema.NewCorpus("kw", sources)
	if err != nil {
		t.Fatal(err)
	}
	serial := BuildKeywordIndex(c)
	for _, workers := range []int{2, 4, 16} {
		parallel := BuildKeywordIndexP(c, workers)
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("workers=%d: parallel keyword index differs from serial", workers)
		}
	}
}
