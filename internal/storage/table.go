package storage

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"udi/internal/obs"
	"udi/internal/schema"
)

// Op is a comparison operator usable in a WHERE predicate. The set matches
// the paper's query workload (§7.1): =, !=, <, <=, >, >=, LIKE.
type Op int

const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLike
)

var opNames = [...]string{"=", "!=", "<", "<=", ">", ">=", "LIKE"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// ParseOp converts an operator token to an Op. It accepts "<>" as an alias
// for "!=".
func ParseOp(tok string) (Op, error) {
	switch tok {
	case "=", "==":
		return OpEq, nil
	case "!=", "<>":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	case "LIKE", "like", "Like":
		return OpLike, nil
	}
	return 0, fmt.Errorf("storage: unknown operator %q", tok)
}

// Eval applies the operator to a cell value and a literal.
func (o Op) Eval(cell, literal string) bool {
	switch o {
	case OpEq:
		return EqualValues(cell, literal)
	case OpNe:
		return !EqualValues(cell, literal)
	case OpLt:
		return CompareValues(cell, literal) < 0
	case OpLe:
		return CompareValues(cell, literal) <= 0
	case OpGt:
		return CompareValues(cell, literal) > 0
	case OpGe:
		return CompareValues(cell, literal) >= 0
	case OpLike:
		return Like(cell, literal)
	}
	return false
}

// Pred is one WHERE predicate: attr op literal.
type Pred struct {
	Attr    string
	Op      Op
	Literal string
}

func (p Pred) String() string {
	return fmt.Sprintf("%s %s %q", p.Attr, p.Op, p.Literal)
}

// Table wraps a source instance for scanning. Tables are immutable once
// built, matching the paper's setting where source data is loaded once at
// setup time. Equality lookups build per-column hash indexes lazily:
// each indexed column maps every canonical cell value to the ascending
// list of row ids holding it, and a conjunction of equality predicates
// resolves by intersecting those postings lists instead of scanning.
type Table struct {
	Source *schema.Source

	// Obs, when set, receives index metrics: counters index.builds (one
	// per lazily built column index), index.probes (one per postings
	// lookup) and index.rows_skipped (rows the pushdown avoided
	// scanning). It is a setup-time knob: set it before the table serves
	// concurrent queries. Nil disables recording.
	Obs *obs.Registry
	// NoIndex forces full scans (differential testing and ablations).
	// Setup-time knob, like Obs.
	NoIndex bool
	// IndexThreshold overrides the minimum row count at which equality
	// predicates use index lookups (<= 0 means the default, 64).
	IndexThreshold int

	mu      sync.Mutex
	indexes map[int]map[string][]int // column -> canonical value -> row indices
}

// NewTable builds a Table over a source.
func NewTable(s *schema.Source) *Table { return &Table{Source: s} }

// canonicalValue folds a cell into the equality class CompareValues uses:
// numeric values normalize to a canonical decimal form, strings to their
// trimmed lower-case form. Two cells are EqualValues iff their canonical
// forms are equal — the pushdown relies on this to skip re-verifying
// equality predicates on index candidates — so non-numeric strings that
// happen to start with the numeric marker are escaped out of its space.
func canonicalValue(s string) string {
	if f, ok := parseNumber(s); ok {
		return "#" + strconv.FormatFloat(f, 'g', -1, 64)
	}
	t := strings.ToLower(strings.TrimSpace(s))
	if strings.HasPrefix(t, "#") {
		return "\x00" + t
	}
	return t
}

// index returns (building if needed) the equality index for a column.
// Postings lists are in ascending row order by construction.
func (t *Table) index(col int) map[string][]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, ok := t.indexes[col]; ok {
		return ix
	}
	ix := make(map[string][]int)
	for r, row := range t.Source.Rows {
		k := canonicalValue(row[col])
		ix[k] = append(ix[k], r)
	}
	if t.indexes == nil {
		t.indexes = make(map[int]map[string][]int)
	}
	t.indexes[col] = ix
	t.Obs.Add("index.builds", 1)
	return ix
}

// intersectPostings merges two ascending row-id lists into their
// intersection, preserving order.
func intersectPostings(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Select scans the table, returning the projection of rows satisfying all
// predicates (a conjunction) onto the project columns, in row order. It
// returns an error if any referenced attribute is absent from the schema —
// callers decide whether absence means "skip this source" (as the Source
// baseline does) or is a bug.
func (t *Table) Select(project []string, preds []Pred) ([][]string, error) {
	_, rows, err := t.SelectIdx(project, preds)
	return rows, err
}

// SelectIdx is Select but additionally returns the matching row indices,
// which the probabilistic query engine uses to identify answer
// occurrences across alternative mappings.
func (t *Table) SelectIdx(project []string, preds []Pred) ([]int, [][]string, error) {
	return t.SelectIdxCtx(context.Background(), project, preds)
}

// SelectIdxCtx is SelectIdx under a context: the scan checks for
// cancellation every cancelCheckRows rows and returns ctx.Err() when the
// deadline expires or the caller cancels, so an HTTP request deadline
// actually stops the work instead of letting it run to completion.
func (t *Table) SelectIdxCtx(ctx context.Context, project []string, preds []Pred) ([]int, [][]string, error) {
	projIdx := make([]int, len(project))
	for i, a := range project {
		idx := t.Source.AttrIndex(a)
		if idx < 0 {
			return nil, nil, fmt.Errorf("storage: source %q has no attribute %q", t.Source.Name, a)
		}
		projIdx[i] = idx
	}
	predIdx := make([]int, len(preds))
	for i, p := range preds {
		idx := t.Source.AttrIndex(p.Attr)
		if idx < 0 {
			return nil, nil, fmt.Errorf("storage: source %q has no attribute %q", t.Source.Name, p.Attr)
		}
		predIdx[i] = idx
	}
	return t.SelectIdxColsCtx(ctx, projIdx, preds, predIdx)
}

// SelectIdxCols is SelectIdxColsCtx without a cancellation point; the
// background context never expires, so the error return is dropped.
func (t *Table) SelectIdxCols(projIdx []int, preds []Pred, predIdx []int) ([]int, [][]string) {
	idxs, out, _ := t.SelectIdxColsCtx(context.Background(), projIdx, preds, predIdx)
	return idxs, out
}

// cancelCheckRows is the scan interval between context checks: frequent
// enough that a canceled query stops within microseconds, rare enough
// that the atomic load is invisible in scan throughput.
const cancelCheckRows = 1024

// SelectIdxColsCtx is SelectIdx with attribute resolution already done:
// the projection and predicate columns are given as column indices (the
// predicates' Attr fields are ignored). The plan cache uses it to skip
// per-query name lookups. Column indices must be valid for the source.
// The scan polls ctx every cancelCheckRows rows; on cancellation it
// returns ctx.Err() and partial output must be discarded.
func (t *Table) SelectIdxColsCtx(ctx context.Context, projIdx []int, preds []Pred, predIdx []int) ([]int, [][]string, error) {
	var idxs []int
	var out [][]string
	emit := func(r int, row []string) {
		proj := make([]string, len(projIdx))
		for i, idx := range projIdx {
			proj[i] = row[idx]
		}
		idxs = append(idxs, r)
		out = append(out, proj)
	}
	matches := func(row []string) bool {
		for i, p := range preds {
			if !p.Op.Eval(row[predIdx[i]], p.Literal) {
				return false
			}
		}
		return true
	}

	// Equality predicates push down to the per-column postings: each
	// contributes a sorted row-id list, the conjunction is their
	// intersection, and the surviving candidates are verified against the
	// full predicate list in row order (canonical-value equality is a
	// candidate generator, not the final word). Indexes build lazily and
	// only when the table is big enough to amortize the build.
	threshold := t.IndexThreshold
	if threshold <= 0 {
		threshold = defaultIndexThreshold
	}
	if !t.NoIndex && len(t.Source.Rows) >= threshold {
		candidates, probes := []int(nil), 0
		var verify []int // non-equality predicates the postings can't answer
		for i, p := range preds {
			if p.Op != OpEq {
				verify = append(verify, i)
				continue
			}
			postings := t.index(predIdx[i])[canonicalValue(p.Literal)]
			probes++
			if probes == 1 {
				candidates = postings
			} else {
				candidates = intersectPostings(candidates, postings)
			}
			if len(candidates) == 0 {
				break
			}
		}
		if probes > 0 {
			if t.Obs.Enabled() {
				t.Obs.Add("index.probes", int64(probes))
				t.Obs.Add("index.rows_skipped", int64(len(t.Source.Rows)-len(candidates)))
			}
			// Canonical-form equality coincides exactly with EqualValues
			// (see canonicalValue), so candidates already satisfy every
			// equality predicate; only the remaining operators need the
			// per-row check.
			for n, r := range candidates {
				if n%cancelCheckRows == 0 {
					if err := ctx.Err(); err != nil {
						return nil, nil, err
					}
				}
				row := t.Source.Rows[r]
				ok := true
				for _, i := range verify {
					if !preds[i].Op.Eval(row[predIdx[i]], preds[i].Literal) {
						ok = false
						break
					}
				}
				if ok {
					emit(r, row)
				}
			}
			return idxs, out, nil
		}
	}
	for r, row := range t.Source.Rows {
		if r%cancelCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		if matches(row) {
			emit(r, row)
		}
	}
	return idxs, out, nil
}

// defaultIndexThreshold is the row count below which a full scan beats
// building and probing an index.
const defaultIndexThreshold = 64
