package storage

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"udi/internal/schema"
)

// Op is a comparison operator usable in a WHERE predicate. The set matches
// the paper's query workload (§7.1): =, !=, <, <=, >, >=, LIKE.
type Op int

const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLike
)

var opNames = [...]string{"=", "!=", "<", "<=", ">", ">=", "LIKE"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// ParseOp converts an operator token to an Op. It accepts "<>" as an alias
// for "!=".
func ParseOp(tok string) (Op, error) {
	switch tok {
	case "=", "==":
		return OpEq, nil
	case "!=", "<>":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	case "LIKE", "like", "Like":
		return OpLike, nil
	}
	return 0, fmt.Errorf("storage: unknown operator %q", tok)
}

// Eval applies the operator to a cell value and a literal.
func (o Op) Eval(cell, literal string) bool {
	switch o {
	case OpEq:
		return EqualValues(cell, literal)
	case OpNe:
		return !EqualValues(cell, literal)
	case OpLt:
		return CompareValues(cell, literal) < 0
	case OpLe:
		return CompareValues(cell, literal) <= 0
	case OpGt:
		return CompareValues(cell, literal) > 0
	case OpGe:
		return CompareValues(cell, literal) >= 0
	case OpLike:
		return Like(cell, literal)
	}
	return false
}

// Pred is one WHERE predicate: attr op literal.
type Pred struct {
	Attr    string
	Op      Op
	Literal string
}

func (p Pred) String() string {
	return fmt.Sprintf("%s %s %q", p.Attr, p.Op, p.Literal)
}

// Table wraps a source instance for scanning. Tables are immutable once
// built, matching the paper's setting where source data is loaded once at
// setup time. Equality lookups build per-column hash indexes lazily.
type Table struct {
	Source *schema.Source

	mu      sync.Mutex
	indexes map[int]map[string][]int // column -> canonical value -> row indices
}

// NewTable builds a Table over a source.
func NewTable(s *schema.Source) *Table { return &Table{Source: s} }

// canonicalValue folds a cell into the equality class CompareValues uses:
// numeric values normalize to a canonical decimal form, strings to their
// trimmed lower-case form.
func canonicalValue(s string) string {
	if f, ok := parseNumber(s); ok {
		return "#" + strconv.FormatFloat(f, 'g', -1, 64)
	}
	return strings.ToLower(strings.TrimSpace(s))
}

// index returns (building if needed) the equality index for a column.
func (t *Table) index(col int) map[string][]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, ok := t.indexes[col]; ok {
		return ix
	}
	ix := make(map[string][]int)
	for r, row := range t.Source.Rows {
		k := canonicalValue(row[col])
		ix[k] = append(ix[k], r)
	}
	if t.indexes == nil {
		t.indexes = make(map[int]map[string][]int)
	}
	t.indexes[col] = ix
	return ix
}

// Select scans the table, returning the projection of rows satisfying all
// predicates (a conjunction) onto the project columns, in row order. It
// returns an error if any referenced attribute is absent from the schema —
// callers decide whether absence means "skip this source" (as the Source
// baseline does) or is a bug.
func (t *Table) Select(project []string, preds []Pred) ([][]string, error) {
	_, rows, err := t.SelectIdx(project, preds)
	return rows, err
}

// SelectIdx is Select but additionally returns the matching row indices,
// which the probabilistic query engine uses to identify answer
// occurrences across alternative mappings.
func (t *Table) SelectIdx(project []string, preds []Pred) ([]int, [][]string, error) {
	projIdx := make([]int, len(project))
	for i, a := range project {
		idx := t.Source.AttrIndex(a)
		if idx < 0 {
			return nil, nil, fmt.Errorf("storage: source %q has no attribute %q", t.Source.Name, a)
		}
		projIdx[i] = idx
	}
	predIdx := make([]int, len(preds))
	for i, p := range preds {
		idx := t.Source.AttrIndex(p.Attr)
		if idx < 0 {
			return nil, nil, fmt.Errorf("storage: source %q has no attribute %q", t.Source.Name, p.Attr)
		}
		predIdx[i] = idx
	}
	var idxs []int
	var out [][]string
	emit := func(r int, row []string) {
		proj := make([]string, len(projIdx))
		for i, idx := range projIdx {
			proj[i] = row[idx]
		}
		idxs = append(idxs, r)
		out = append(out, proj)
	}
	matches := func(row []string) bool {
		for i, p := range preds {
			if !p.Op.Eval(row[predIdx[i]], p.Literal) {
				return false
			}
		}
		return true
	}

	// Equality predicates drive an index lookup when the table is big
	// enough to amortize the build; candidate rows are verified against
	// the remaining predicates in row order.
	const indexThreshold = 64
	if len(t.Source.Rows) >= indexThreshold {
		for i, p := range preds {
			if p.Op != OpEq {
				continue
			}
			for _, r := range t.index(predIdx[i])[canonicalValue(p.Literal)] {
				row := t.Source.Rows[r]
				if matches(row) {
					emit(r, row)
				}
			}
			return idxs, out, nil
		}
	}
	for r, row := range t.Source.Rows {
		if matches(row) {
			emit(r, row)
		}
	}
	return idxs, out, nil
}
