// Package storage is the relational-store substrate that replaces MySQL in
// the paper's evaluation (§7.1): it stores each data source as a single
// in-memory table and supports select-project scans with comparison and
// LIKE predicates, plus an inverted keyword index used by the keyword
// baselines (§7.3).
package storage

import (
	"strconv"
	"strings"
)

// CompareValues compares two cell values with MySQL-like dynamic typing:
// if both parse as numbers the comparison is numeric, otherwise it is a
// case-insensitive lexicographic comparison. It returns -1, 0 or 1.
//
// Note the paper observes (§7.3) that numeric comparisons evaluated over
// string-typed data produce incorrect answers for the Source baseline in
// the Course domain; this dynamic fallback reproduces that behaviour.
func CompareValues(a, b string) int {
	fa, oka := parseNumber(a)
	fb, okb := parseNumber(b)
	if oka && okb {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	la, lb := strings.ToLower(strings.TrimSpace(a)), strings.ToLower(strings.TrimSpace(b))
	switch {
	case la < lb:
		return -1
	case la > lb:
		return 1
	default:
		return 0
	}
}

// EqualValues reports value equality under the same dynamic typing as
// CompareValues.
func EqualValues(a, b string) bool { return CompareValues(a, b) == 0 }

func parseNumber(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	return f, err == nil
}

// Like reports whether value matches the SQL LIKE pattern, where '%'
// matches any run of characters (including empty) and '_' matches exactly
// one character. Matching is case-insensitive, as in MySQL's default
// collation.
func Like(value, pattern string) bool {
	return likeMatch([]rune(strings.ToLower(value)), []rune(strings.ToLower(pattern)))
}

// likeMatch is an iterative two-pointer wildcard matcher (the classic
// backtrack-on-last-% algorithm), linear in practice.
func likeMatch(v, p []rune) bool {
	vi, pi := 0, 0
	star, vstar := -1, -1
	for vi < len(v) {
		switch {
		// The wildcard case must precede the literal case: a value
		// containing a literal '%' must not consume the pattern's '%'.
		case pi < len(p) && p[pi] == '%':
			star, vstar = pi, vi
			pi++
		case pi < len(p) && (p[pi] == '_' || p[pi] == v[vi]):
			vi++
			pi++
		case star >= 0:
			// Backtrack: let the last % absorb one more rune.
			vstar++
			vi, pi = vstar, star+1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
