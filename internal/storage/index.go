package storage

import (
	"slices"
	"sort"
	"sync"

	"udi/internal/schema"
	"udi/internal/strutil"
)

// RowRef identifies one row of one source.
type RowRef struct {
	Source string
	Row    int
}

// KeywordIndex is an inverted index from lower-cased tokens to the rows
// whose values contain them, plus a record of which tokens appear as
// attribute names in which sources. It backs the keyword-search baselines
// of §7.3 (the substitute for MySQL's fulltext engine).
type KeywordIndex struct {
	valuePostings map[string][]RowRef        // token -> rows whose cells contain it
	attrTokens    map[string]map[string]bool // token -> sources where it names an attribute
	sources       map[string]*schema.Source  // source name -> source
}

// BuildKeywordIndex indexes every cell value and attribute name of the
// corpus. Tokens are produced by strutil.Tokens (normalized, split on
// separators).
func BuildKeywordIndex(c *schema.Corpus) *KeywordIndex {
	return BuildKeywordIndexP(c, 1)
}

// sourceIndex is the per-source shard the sharded build produces before
// the deterministic merge: each row's deduplicated token-ID set,
// flattened into one backing array (toks[ends[r-1]:ends[r]] is row r's
// set). The flat layout keeps a source at two allocations instead of a
// map entry plus slice per row, which is what made the import stage
// GC-bound.
type sourceIndex struct {
	attrTokens map[string]bool
	toks       []int32
	ends       []int
}

// internTable assigns dense int32 IDs to distinct tokens so the merge
// works on slice indices instead of string-keyed maps. It is only
// consulted on tokenMemo misses (one per distinct cell value per worker),
// so the mutex is effectively uncontended.
type internTable struct {
	mu    sync.Mutex
	ids   map[string]int32
	names []string
}

func (it *internTable) intern(toks []string) []int32 {
	out := make([]int32, len(toks))
	it.mu.Lock()
	for i, t := range toks {
		id, ok := it.ids[t]
		if !ok {
			id = int32(len(it.names))
			it.ids[t] = id
			it.names = append(it.names, t)
		}
		out[i] = id
	}
	it.mu.Unlock()
	return out
}

// tokenMemo caches strutil.Tokens (interned) per distinct input string.
// Corpus cells repeat heavily (a handful of makes, models, colors across
// tens of thousands of rows), so the memo turns the import stage's
// dominant cost — tokenization — into a map lookup. One memo per worker;
// the cached slices are shared read-only.
type tokenMemo struct {
	it *internTable
	m  map[string][]int32
}

func (m tokenMemo) tokens(s string) []int32 {
	if t, ok := m.m[s]; ok {
		return t
	}
	t := m.it.intern(strutil.Tokens(s))
	m.m[s] = t
	return t
}

func newTokenMemo(it *internTable) tokenMemo {
	return tokenMemo{it: it, m: make(map[string][]int32)}
}

func indexSource(s *schema.Source, memo tokenMemo) sourceIndex {
	si := sourceIndex{
		attrTokens: make(map[string]bool),
		ends:       make([]int, len(s.Rows)),
	}
	// Attribute names stay as strings (a handful per source); going
	// through the intern table here would read its names slice while
	// other workers append to it.
	for _, a := range s.Attrs {
		for _, tok := range strutil.Tokens(a) {
			si.attrTokens[tok] = true
		}
	}
	var buf []int32
	for r, row := range s.Rows {
		buf = buf[:0]
		for _, cell := range row {
			buf = append(buf, memo.tokens(cell)...)
		}
		// Sort-and-skip-duplicates replaces the per-row seen map; rows
		// hold a handful of token IDs, so the sort is effectively free.
		slices.Sort(buf)
		for i, t := range buf {
			if i > 0 && t == buf[i-1] {
				continue
			}
			si.toks = append(si.toks, t)
		}
		si.ends[r] = len(si.toks)
	}
	return si
}

// BuildKeywordIndexP is BuildKeywordIndex with the per-source tokenizing
// pass (the import stage's dominant cost) split across up to workers
// goroutines. Shards are merged in corpus order, so postings lists are
// identical at every worker count.
func BuildKeywordIndexP(c *schema.Corpus, workers int) *KeywordIndex {
	if workers > len(c.Sources) {
		workers = len(c.Sources)
	}
	it := &internTable{ids: make(map[string]int32)}
	shards := make([]sourceIndex, len(c.Sources))
	if workers > 1 {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				memo := newTokenMemo(it)
				for i := range jobs {
					shards[i] = indexSource(c.Sources[i], memo)
				}
			}()
		}
		for i := range c.Sources {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	} else {
		memo := newTokenMemo(it)
		for i := range c.Sources {
			shards[i] = indexSource(c.Sources[i], memo)
		}
	}

	// The merge appends one posting per (row, token) pair — ~100k on a
	// realistic corpus. Interned IDs make it pure slice indexing; the
	// string-keyed map is assembled once at the end (one entry per
	// distinct token).
	postings := make([][]RowRef, len(it.names))
	ix := &KeywordIndex{
		attrTokens: make(map[string]map[string]bool),
		sources:    make(map[string]*schema.Source, len(c.Sources)),
	}
	for i, s := range c.Sources {
		si := shards[i]
		ix.sources[s.Name] = s
		for tok := range si.attrTokens {
			m := ix.attrTokens[tok]
			if m == nil {
				m = make(map[string]bool)
				ix.attrTokens[tok] = m
			}
			m[s.Name] = true
		}
		// Postings append per row in corpus order, so each token's list
		// is sorted by (source position, row) regardless of worker count
		// and of the (arrival-ordered, nondeterministic) ID assignment.
		start := 0
		for r, end := range si.ends {
			for _, id := range si.toks[start:end] {
				postings[id] = append(postings[id], RowRef{s.Name, r})
			}
			start = end
		}
	}
	ix.valuePostings = make(map[string][]RowRef, len(postings))
	for id, refs := range postings {
		if refs != nil {
			ix.valuePostings[it.names[id]] = refs
		}
	}
	return ix
}

// IsAttrToken reports whether token appears (as a normalized token) in some
// attribute name of source. The KeywordStruct/KeywordStrict baselines use
// this to classify query keywords as structure terms vs value terms.
func (ix *KeywordIndex) IsAttrToken(token, source string) bool {
	return ix.attrTokens[strutil.Normalize(token)][source]
}

// IsAttrTokenAnywhere reports whether token names an attribute in any
// source.
func (ix *KeywordIndex) IsAttrTokenAnywhere(token string) bool {
	return len(ix.attrTokens[strutil.Normalize(token)]) > 0
}

// RowsWithAny returns the rows containing at least one of the tokens
// (value-term OR semantics). Tokens are normalized; multi-token inputs are
// split.
func (ix *KeywordIndex) RowsWithAny(terms []string) []RowRef {
	seen := make(map[RowRef]bool)
	var out []RowRef
	for _, term := range terms {
		for _, tok := range strutil.Tokens(term) {
			for _, ref := range ix.valuePostings[tok] {
				if !seen[ref] {
					seen[ref] = true
					out = append(out, ref)
				}
			}
		}
	}
	sortRefs(out)
	return out
}

// RowsWithAll returns the rows containing every one of the tokens
// (value-term AND semantics, used by KeywordStrict). An empty term list
// yields no rows.
func (ix *KeywordIndex) RowsWithAll(terms []string) []RowRef {
	var toks []string
	for _, term := range terms {
		toks = append(toks, strutil.Tokens(term)...)
	}
	if len(toks) == 0 {
		return nil
	}
	counts := make(map[RowRef]int)
	for _, tok := range dedupe(toks) {
		for _, ref := range ix.valuePostings[tok] {
			counts[ref]++
		}
	}
	need := len(dedupe(toks))
	var out []RowRef
	for ref, n := range counts {
		if n == need {
			out = append(out, ref)
		}
	}
	sortRefs(out)
	return out
}

// Row returns the raw row for a RowRef, or nil if the reference is stale.
func (ix *KeywordIndex) Row(ref RowRef) []string {
	s := ix.sources[ref.Source]
	if s == nil || ref.Row < 0 || ref.Row >= len(s.Rows) {
		return nil
	}
	return s.Rows[ref.Row]
}

// SourceOf returns the source for a RowRef, or nil.
func (ix *KeywordIndex) SourceOf(ref RowRef) *schema.Source { return ix.sources[ref.Source] }

func dedupe(toks []string) []string {
	seen := make(map[string]bool, len(toks))
	var out []string
	for _, t := range toks {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

func sortRefs(refs []RowRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Source != refs[j].Source {
			return refs[i].Source < refs[j].Source
		}
		return refs[i].Row < refs[j].Row
	})
}
