package storage

import (
	"sort"

	"udi/internal/schema"
	"udi/internal/strutil"
)

// RowRef identifies one row of one source.
type RowRef struct {
	Source string
	Row    int
}

// KeywordIndex is an inverted index from lower-cased tokens to the rows
// whose values contain them, plus a record of which tokens appear as
// attribute names in which sources. It backs the keyword-search baselines
// of §7.3 (the substitute for MySQL's fulltext engine).
type KeywordIndex struct {
	valuePostings map[string][]RowRef         // token -> rows whose cells contain it
	attrTokens    map[string]map[string]bool  // token -> sources where it names an attribute
	sources       map[string]*schema.Source   // source name -> source
	rowTokens     map[string]map[int][]string // source -> row -> its token set (for AND queries)
}

// BuildKeywordIndex indexes every cell value and attribute name of the
// corpus. Tokens are produced by strutil.Tokens (normalized, split on
// separators).
func BuildKeywordIndex(c *schema.Corpus) *KeywordIndex {
	ix := &KeywordIndex{
		valuePostings: make(map[string][]RowRef),
		attrTokens:    make(map[string]map[string]bool),
		sources:       make(map[string]*schema.Source),
		rowTokens:     make(map[string]map[int][]string),
	}
	for _, s := range c.Sources {
		ix.sources[s.Name] = s
		ix.rowTokens[s.Name] = make(map[int][]string)
		for _, a := range s.Attrs {
			for _, tok := range strutil.Tokens(a) {
				m := ix.attrTokens[tok]
				if m == nil {
					m = make(map[string]bool)
					ix.attrTokens[tok] = m
				}
				m[s.Name] = true
			}
		}
		for r, row := range s.Rows {
			seen := make(map[string]bool)
			for _, cell := range row {
				for _, tok := range strutil.Tokens(cell) {
					if !seen[tok] {
						seen[tok] = true
						ix.valuePostings[tok] = append(ix.valuePostings[tok], RowRef{s.Name, r})
					}
				}
			}
			toks := make([]string, 0, len(seen))
			for tok := range seen {
				toks = append(toks, tok)
			}
			sort.Strings(toks)
			ix.rowTokens[s.Name][r] = toks
		}
	}
	return ix
}

// IsAttrToken reports whether token appears (as a normalized token) in some
// attribute name of source. The KeywordStruct/KeywordStrict baselines use
// this to classify query keywords as structure terms vs value terms.
func (ix *KeywordIndex) IsAttrToken(token, source string) bool {
	return ix.attrTokens[strutil.Normalize(token)][source]
}

// IsAttrTokenAnywhere reports whether token names an attribute in any
// source.
func (ix *KeywordIndex) IsAttrTokenAnywhere(token string) bool {
	return len(ix.attrTokens[strutil.Normalize(token)]) > 0
}

// RowsWithAny returns the rows containing at least one of the tokens
// (value-term OR semantics). Tokens are normalized; multi-token inputs are
// split.
func (ix *KeywordIndex) RowsWithAny(terms []string) []RowRef {
	seen := make(map[RowRef]bool)
	var out []RowRef
	for _, term := range terms {
		for _, tok := range strutil.Tokens(term) {
			for _, ref := range ix.valuePostings[tok] {
				if !seen[ref] {
					seen[ref] = true
					out = append(out, ref)
				}
			}
		}
	}
	sortRefs(out)
	return out
}

// RowsWithAll returns the rows containing every one of the tokens
// (value-term AND semantics, used by KeywordStrict). An empty term list
// yields no rows.
func (ix *KeywordIndex) RowsWithAll(terms []string) []RowRef {
	var toks []string
	for _, term := range terms {
		toks = append(toks, strutil.Tokens(term)...)
	}
	if len(toks) == 0 {
		return nil
	}
	counts := make(map[RowRef]int)
	for _, tok := range dedupe(toks) {
		for _, ref := range ix.valuePostings[tok] {
			counts[ref]++
		}
	}
	need := len(dedupe(toks))
	var out []RowRef
	for ref, n := range counts {
		if n == need {
			out = append(out, ref)
		}
	}
	sortRefs(out)
	return out
}

// Row returns the raw row for a RowRef, or nil if the reference is stale.
func (ix *KeywordIndex) Row(ref RowRef) []string {
	s := ix.sources[ref.Source]
	if s == nil || ref.Row < 0 || ref.Row >= len(s.Rows) {
		return nil
	}
	return s.Rows[ref.Row]
}

// SourceOf returns the source for a RowRef, or nil.
func (ix *KeywordIndex) SourceOf(ref RowRef) *schema.Source { return ix.sources[ref.Source] }

func dedupe(toks []string) []string {
	seen := make(map[string]bool, len(toks))
	var out []string
	for _, t := range toks {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

func sortRefs(refs []RowRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Source != refs[j].Source {
			return refs[i].Source < refs[j].Source
		}
		return refs[i].Row < refs[j].Row
	})
}
