package consolidate

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"udi/internal/pmapping"
	"udi/internal/schema"
)

func medSchema(clusters ...[]string) *schema.MediatedSchema {
	var attrs []schema.MediatedAttr
	for _, c := range clusters {
		attrs = append(attrs, schema.NewMediatedAttr(c...))
	}
	return schema.MustNewMediatedSchema(attrs)
}

// Example 6.1 from the paper: M1 = {a1,a2,a3}, {a4}, {a5,a6};
// M2 = {a2,a3,a4}, {a1,a5,a6}. T must be {a1}, {a2,a3}, {a4}, {a5,a6}.
func TestSchemaPaperExample(t *testing.T) {
	m1 := medSchema([]string{"a1", "a2", "a3"}, []string{"a4"}, []string{"a5", "a6"})
	m2 := medSchema([]string{"a2", "a3", "a4"}, []string{"a1", "a5", "a6"})
	pmed, err := schema.NewPMedSchema([]*schema.MediatedSchema{m1, m2}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	target, err := Schema(pmed)
	if err != nil {
		t.Fatal(err)
	}
	want := medSchema([]string{"a1"}, []string{"a2", "a3"}, []string{"a4"}, []string{"a5", "a6"})
	if !target.Equal(want) {
		t.Errorf("T = %s, want %s", target, want)
	}
}

func TestSchemaSingleInput(t *testing.T) {
	m1 := medSchema([]string{"a", "b"}, []string{"c"})
	pmed, _ := schema.NewPMedSchema([]*schema.MediatedSchema{m1}, []float64{1})
	target, err := Schema(pmed)
	if err != nil {
		t.Fatal(err)
	}
	if !target.Equal(m1) {
		t.Errorf("consolidating one schema must be identity: %s", target)
	}
}

func TestSchemaEmpty(t *testing.T) {
	if _, err := Schema(&schema.PMedSchema{}); err == nil {
		t.Error("empty p-med-schema accepted")
	}
}

// Coarsest-refinement property on the paper's example: attributes are
// together in T iff together in every M_i.
func TestSchemaCoarsestRefinement(t *testing.T) {
	m1 := medSchema([]string{"a", "b", "c"}, []string{"d"})
	m2 := medSchema([]string{"a", "b"}, []string{"c", "d"})
	pmed, _ := schema.NewPMedSchema([]*schema.MediatedSchema{m1, m2}, []float64{0.6, 0.4})
	target, err := Schema(pmed)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "c", "d"}
	for _, x := range names {
		for _, y := range names {
			togetherAll := true
			for _, m := range pmed.Schemas {
				if !m.ClusterOf(x).Contains(y) {
					togetherAll = false
					break
				}
			}
			gotTogether := target.ClusterOf(x).Contains(y)
			if gotTogether != togetherAll {
				t.Errorf("attrs %s,%s: together in T = %v, in all M_i = %v", x, y, gotTogether, togetherAll)
			}
		}
	}
}

func tableSim(table map[[2]string]float64) func(a, b string) float64 {
	return func(a, b string) float64 {
		if w, ok := table[[2]string{a, b}]; ok {
			return w
		}
		if w, ok := table[[2]string{b, a}]; ok {
			return w
		}
		if a == b {
			return 1
		}
		return 0
	}
}

// Build a small two-schema p-med-schema with p-mappings and consolidate.
func buildFixture(t *testing.T) (*schema.PMedSchema, *schema.MediatedSchema, []*pmapping.PMapping, *schema.Source) {
	t.Helper()
	src := schema.MustNewSource("s", []string{"phone"}, nil)
	// M1 groups phone with hPhone; M2 groups phone with oPhone.
	m1 := medSchema([]string{"phone", "hPhone"}, []string{"oPhone"}, []string{"name"})
	m2 := medSchema([]string{"phone", "oPhone"}, []string{"hPhone"}, []string{"name"})
	pmed, err := schema.NewPMedSchema([]*schema.MediatedSchema{m1, m2}, []float64{0.6, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	sim := tableSim(map[[2]string]float64{
		{"phone", "hPhone"}: 0.45,
		{"phone", "oPhone"}: 0.45,
	})
	cfg := pmapping.Config{Sim: sim, CorrThreshold: 0.4}
	var pms []*pmapping.PMapping
	for _, m := range pmed.Schemas {
		pm, err := pmapping.Build(src, m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pms = append(pms, pm)
	}
	target, err := Schema(pmed)
	if err != nil {
		t.Fatal(err)
	}
	return pmed, target, pms, src
}

func TestConsolidateMappings(t *testing.T) {
	pmed, target, pms, _ := buildFixture(t)
	cpm, err := ConsolidateMappings(pmed, target, pms, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cpm.TotalProb()-1) > 1e-8 {
		t.Errorf("consolidated mass = %f, want 1", cpm.TotalProb())
	}
	// T separates phone, hPhone, oPhone (they are clustered differently in
	// M1 vs M2). A mapping from M1 sending phone to {phone,hPhone} must
	// become a one-to-many mapping to both singleton T attrs.
	phoneIdx, hIdx := -1, -1
	for i, a := range target.Attrs {
		if a.Contains("phone") && len(a) == 1 {
			phoneIdx = i
		}
		if a.Contains("hPhone") {
			hIdx = i
		}
	}
	if phoneIdx < 0 || hIdx < 0 {
		t.Fatalf("unexpected target %s", target)
	}
	foundOneToMany := false
	for _, m := range cpm.Mappings {
		if idxs, ok := m.SrcToMed["phone"]; ok && len(idxs) == 2 {
			foundOneToMany = true
			want := []int{min(phoneIdx, hIdx), max(phoneIdx, hIdx)}
			// Could map to {phone,hPhone} (from M1) or {phone,oPhone}
			// (from M2); both are one-to-many pairs containing phoneIdx.
			if idxs[0] != want[0] && !containsInt(idxs, phoneIdx) {
				t.Errorf("unexpected one-to-many target %v", idxs)
			}
		}
	}
	if !foundOneToMany {
		t.Error("no one-to-many mapping produced; §6 step 1 not applied")
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestConsolidateMergesIdentical(t *testing.T) {
	pmed, target, pms, _ := buildFixture(t)
	cpm, err := ConsolidateMappings(pmed, target, pms, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// The empty mapping arises from both M1 and M2; step 3 must merge it
	// into one entry.
	empties := 0
	for _, m := range cpm.Mappings {
		if len(m.SrcToMed) == 0 {
			empties++
		}
	}
	if empties > 1 {
		t.Errorf("empty mapping appears %d times; merging failed", empties)
	}
	seen := map[string]bool{}
	for _, m := range cpm.Mappings {
		k := m.key()
		if seen[k] {
			t.Errorf("duplicate mapping %v", m.SrcToMed)
		}
		seen[k] = true
	}
}

func TestMedToSrcInversion(t *testing.T) {
	m := OneToMany{SrcToMed: map[string][]int{"a": {0, 2}, "b": {1}}}
	inv := m.MedToSrc()
	want := map[int]string{0: "a", 2: "a", 1: "b"}
	if !reflect.DeepEqual(inv, want) {
		t.Errorf("MedToSrc = %v", inv)
	}
}

func TestConsolidateMappingsErrors(t *testing.T) {
	pmed, target, pms, _ := buildFixture(t)
	if _, err := ConsolidateMappings(pmed, target, pms[:1], 10000); err == nil {
		t.Error("mismatched p-mapping count accepted")
	}
	if _, err := ConsolidateMappings(pmed, target, []*pmapping.PMapping{nil, nil}, 10000); err == nil {
		t.Error("nil p-mappings accepted")
	}
	if _, err := ConsolidateMappings(pmed, target, pms, 1); err == nil {
		t.Error("exceeding maxMappings not reported")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Property: Schema produces the coarsest refinement of random
// p-med-schemas — two attributes share a T cluster iff they share a
// cluster in every M_i.
func TestSchemaRandomCoarsestRefinement(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		nSchemas := 1 + rng.Intn(4)
		var schemas []*schema.MediatedSchema
		seen := map[string]bool{}
		for attempts := 0; len(schemas) < nSchemas && attempts < 100; attempts++ {
			k := 1 + rng.Intn(n)
			buckets := make([][]string, k)
			for i, name := range names {
				b := i % k
				if i >= k {
					b = rng.Intn(k)
				}
				buckets[b] = append(buckets[b], name)
			}
			var attrs []schema.MediatedAttr
			for _, b := range buckets {
				if len(b) > 0 {
					attrs = append(attrs, schema.NewMediatedAttr(b...))
				}
			}
			m := schema.MustNewMediatedSchema(attrs)
			if seen[m.Key()] {
				continue // duplicate clustering; try another draw
			}
			seen[m.Key()] = true
			schemas = append(schemas, m)
		}
		if len(schemas) == 0 {
			return true // degenerate draw; nothing to check
		}
		probs := make([]float64, len(schemas))
		for i := range probs {
			probs[i] = 1 / float64(len(schemas))
		}
		// Fix rounding to sum exactly 1.
		probs[len(probs)-1] = 1
		for _, p := range probs[:len(probs)-1] {
			probs[len(probs)-1] -= p
		}
		pmed, err := schema.NewPMedSchema(schemas, probs)
		if err != nil {
			return false
		}
		target, err := Schema(pmed)
		if err != nil {
			return false
		}
		for _, x := range names {
			for _, y := range names {
				all := true
				for _, m := range schemas {
					if !m.ClusterOf(x).Contains(y) {
						all = false
						break
					}
				}
				if target.ClusterOf(x).Contains(y) != all {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
