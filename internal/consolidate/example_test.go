package consolidate_test

import (
	"fmt"

	"udi/internal/consolidate"
	"udi/internal/schema"
)

// Example 6.1 of the paper: consolidating M1 = ({a1,a2,a3}, {a4}, {a5,a6})
// and M2 = ({a2,a3,a4}, {a1,a5,a6}) yields the coarsest refinement
// T = ({a1}, {a2,a3}, {a4}, {a5,a6}).
func ExampleSchema() {
	m1 := schema.MustNewMediatedSchema([]schema.MediatedAttr{
		schema.NewMediatedAttr("a1", "a2", "a3"),
		schema.NewMediatedAttr("a4"),
		schema.NewMediatedAttr("a5", "a6"),
	})
	m2 := schema.MustNewMediatedSchema([]schema.MediatedAttr{
		schema.NewMediatedAttr("a2", "a3", "a4"),
		schema.NewMediatedAttr("a1", "a5", "a6"),
	})
	pmed, err := schema.NewPMedSchema([]*schema.MediatedSchema{m1, m2}, []float64{0.5, 0.5})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	target, err := consolidate.Schema(pmed)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(target)
	// Output:
	// ({a1}, {a2, a3}, {a4}, {a5, a6})
}
