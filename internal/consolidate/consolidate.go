// Package consolidate implements §6 of the paper: collapsing a
// probabilistic mediated schema into a single deterministic mediated schema
// (Algorithm 3 — the coarsest refinement of the possible schemas) and
// consolidating the per-schema p-mappings into a single p-mapping of
// one-to-many mappings whose query answers are equivalent (Theorem 6.2).
package consolidate

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"udi/internal/pmapping"
	"udi/internal/schema"
)

// Schema implements Algorithm 3. Two attributes share a cluster in the
// result T iff they share a cluster in every M_i of the p-med-schema.
// Attributes absent from some M_i are treated as singletons there (the
// pipeline always feeds schemas over the same attribute set, so this is
// only a safeguard).
func Schema(pmed *schema.PMedSchema) (*schema.MediatedSchema, error) {
	return SchemaP(pmed, 1)
}

// SchemaP is Schema with the per-attribute signature computation split
// across up to workers goroutines. Signatures are independent per
// attribute and the final clustering is canonically sorted, so the result
// is identical at every worker count.
func SchemaP(pmed *schema.PMedSchema, workers int) (*schema.MediatedSchema, error) {
	if pmed.Len() == 0 {
		return nil, fmt.Errorf("consolidate: empty p-med-schema")
	}
	names := map[string]bool{}
	// clusterKey[i][name] is the cluster identity of name in schema M_i —
	// one linear pass per schema, replacing the ClusterOf scan per
	// (attribute, schema) pair.
	clusterKey := make([]map[string]string, pmed.Len())
	for i, m := range pmed.Schemas {
		keys := make(map[string]string)
		for _, c := range m.Attrs {
			k := c.Key()
			for _, n := range c {
				keys[n] = k
				names[n] = true
			}
		}
		clusterKey[i] = keys
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	// Signature of an attribute: the tuple of cluster identities across
	// all M_i. Equal signatures <=> always clustered together.
	sigs := make([]string, len(sorted))
	signature := func(lo, hi int) {
		var b strings.Builder
		for x := lo; x < hi; x++ {
			n := sorted[x]
			b.Reset()
			for i := range pmed.Schemas {
				if i > 0 {
					b.WriteByte('\x1d')
				}
				if k, ok := clusterKey[i][n]; ok {
					b.WriteString(k)
					continue
				}
				b.WriteByte('\x00') // singleton placeholder
				b.WriteString(n)
			}
			sigs[x] = b.String()
		}
	}
	if workers > len(sorted) {
		workers = len(sorted)
	}
	if workers <= 1 {
		signature(0, len(sorted))
	} else {
		var wg sync.WaitGroup
		chunk := (len(sorted) + workers - 1) / workers
		for lo := 0; lo < len(sorted); lo += chunk {
			hi := lo + chunk
			if hi > len(sorted) {
				hi = len(sorted)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				signature(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	groups := map[string][]string{}
	for x, n := range sorted {
		groups[sigs[x]] = append(groups[sigs[x]], n)
	}
	clusters := make([]schema.MediatedAttr, 0, len(groups))
	for _, g := range groups {
		clusters = append(clusters, schema.NewMediatedAttr(g...))
	}
	return schema.NewMediatedSchema(clusters)
}

// OneToMany is a single one-to-many schema mapping into the consolidated
// schema T: a source attribute maps to a set of T attributes (step 1 of
// the consolidation replaces (a, A) by every (a, B) with B ⊆ A).
type OneToMany struct {
	// SrcToMed maps a source attribute to the sorted indices of the T
	// attributes it corresponds to.
	SrcToMed map[string][]int
	Prob     float64
}

// key canonicalizes the mapping for step-3 merging.
func (m OneToMany) key() string {
	attrs := make([]string, 0, len(m.SrcToMed))
	for a := range m.SrcToMed {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	var b []byte
	for _, a := range attrs {
		b = append(b, a...)
		b = append(b, '=')
		for _, j := range m.SrcToMed[a] {
			b = strconv.AppendInt(b, int64(j), 10)
			b = append(b, ',')
		}
		b = append(b, ';')
	}
	return string(b)
}

// MedToSrc inverts the mapping: each T attribute index corresponds to at
// most one source attribute (a T cluster refines exactly one M_i cluster,
// which maps one-to-one), so the inversion is well defined.
func (m OneToMany) MedToSrc() map[int]string {
	out := make(map[int]string)
	for a, idxs := range m.SrcToMed {
		for _, j := range idxs {
			out[j] = a
		}
	}
	return out
}

// PMapping is the consolidated probabilistic mapping between one source and
// the consolidated schema T.
type PMapping struct {
	SourceName string
	Target     *schema.MediatedSchema
	Mappings   []OneToMany
}

// Consolidator precomputes the schema-refinement tables shared by every
// source's consolidation against one (p-med-schema, target) pair. The
// setup pipeline consolidates hundreds of sources against the same pair,
// so hoisting the refinement out of the per-source call removes the
// dominant repeated work (cluster scans and key construction).
type Consolidator struct {
	pmed   *schema.PMedSchema
	target *schema.MediatedSchema
	// refine[i] maps a mediated-attribute index of M_i to the sorted T
	// indices contained in it.
	refine []map[int][]int
}

// NewConsolidator builds the refinement tables for one (pmed, target)
// pair.
func NewConsolidator(pmed *schema.PMedSchema, target *schema.MediatedSchema) *Consolidator {
	refine := make([]map[int][]int, pmed.Len())
	for i, m := range pmed.Schemas {
		r := make(map[int][]int)
		for ti, tAttr := range target.Attrs {
			// Find the M_i cluster containing this T cluster (all its
			// names are together in every M_i by construction).
			c := m.ClusterOf(tAttr[0])
			if c == nil {
				continue
			}
			key := c.Key()
			for mi, mAttr := range m.Attrs {
				if mAttr.Key() == key {
					r[mi] = append(r[mi], ti)
					break
				}
			}
		}
		for mi := range r {
			sort.Ints(r[mi])
		}
		refine[i] = r
	}
	return &Consolidator{pmed: pmed, target: target, refine: refine}
}

// ConsolidateMappings implements the three-step consolidation of §6 for
// one source: pms[i] is the p-mapping between the source and pmed.Schemas[i].
//
//  1. Rewrite each possible mapping of pms[i] into T-space: a correspondence
//     to mediated attribute A becomes correspondences to every T attribute
//     B ⊆ A.
//  2. Scale each mapping's probability by Pr(M_i).
//  3. Merge identical mappings, summing probabilities.
//
// maxMappings bounds the materialized product distribution per schema
// (p-mappings factor into groups; consolidation needs explicit mappings).
func ConsolidateMappings(pmed *schema.PMedSchema, target *schema.MediatedSchema, pms []*pmapping.PMapping, maxMappings int64) (*PMapping, error) {
	return NewConsolidator(pmed, target).Consolidate(pms, maxMappings)
}

// Consolidate runs the per-source consolidation against the precomputed
// refinement tables.
func (co *Consolidator) Consolidate(pms []*pmapping.PMapping, maxMappings int64) (*PMapping, error) {
	pmed, target, refine := co.pmed, co.target, co.refine
	if len(pms) != pmed.Len() {
		return nil, fmt.Errorf("consolidate: %d p-mappings for %d schemas", len(pms), pmed.Len())
	}
	merged := map[string]*OneToMany{}
	var order []string
	srcName := ""
	for i, pm := range pms {
		if pm == nil {
			return nil, fmt.Errorf("consolidate: nil p-mapping for schema %d", i)
		}
		srcName = pm.SourceName
		full, err := pm.FullMappings(maxMappings)
		if err != nil {
			return nil, fmt.Errorf("consolidate: source %q schema %d: %w", pm.SourceName, i, err)
		}
		for _, fm := range full {
			// Step 1: rewrite into T-space. fm.Pairs maps M_i indices ->
			// source attributes.
			otm := OneToMany{SrcToMed: make(map[string][]int, len(fm.Pairs)), Prob: fm.Prob * pmed.Probs[i]}
			for _, p := range fm.Pairs {
				// One-to-one mappings and group-partitioned source attrs
				// mean each Src appears exactly once, so the T indices are
				// just a copy of the (already sorted) refinement list.
				otm.SrcToMed[p.Src] = append([]int(nil), refine[i][p.Med]...)
			}
			if otm.Prob == 0 {
				continue
			}
			// Step 3: merge identical mappings.
			k := otm.key()
			if ex, ok := merged[k]; ok {
				ex.Prob += otm.Prob
				continue
			}
			merged[k] = &otm
			order = append(order, k)
		}
	}
	sort.Strings(order)
	out := &PMapping{SourceName: srcName, Target: target}
	for _, k := range order {
		out.Mappings = append(out.Mappings, *merged[k])
	}
	return out, nil
}

// Clone returns a deep copy of the consolidated p-mapping. The
// schema-dedup cache in core shares one canonical consolidation across
// sources with identical schemas and hands each a clone, so later
// per-source rewrites (feedback re-consolidation replaces the entry
// wholesale, but callers may also edit mappings) cannot leak between
// sources. The target schema is shared — it is immutable.
func (pm *PMapping) Clone() *PMapping {
	cp := &PMapping{SourceName: pm.SourceName, Target: pm.Target}
	if pm.Mappings != nil {
		cp.Mappings = make([]OneToMany, len(pm.Mappings))
		for i, m := range pm.Mappings {
			nm := OneToMany{Prob: m.Prob}
			if m.SrcToMed != nil {
				nm.SrcToMed = make(map[string][]int, len(m.SrcToMed))
				for a, idxs := range m.SrcToMed {
					if idxs == nil { // preserve nil-ness for DeepEqual with a fresh build
						nm.SrcToMed[a] = nil
						continue
					}
					out := make([]int, len(idxs))
					copy(out, idxs)
					nm.SrcToMed[a] = out
				}
			}
			cp.Mappings[i] = nm
		}
	}
	return cp
}

// TotalProb returns the probability mass of the consolidated p-mapping;
// §6 notes it must sum to 1.
func (pm *PMapping) TotalProb() float64 {
	s := 0.0
	for _, m := range pm.Mappings {
		s += m.Prob
	}
	return s
}
