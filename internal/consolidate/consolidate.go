// Package consolidate implements §6 of the paper: collapsing a
// probabilistic mediated schema into a single deterministic mediated schema
// (Algorithm 3 — the coarsest refinement of the possible schemas) and
// consolidating the per-schema p-mappings into a single p-mapping of
// one-to-many mappings whose query answers are equivalent (Theorem 6.2).
package consolidate

import (
	"fmt"
	"sort"
	"strings"

	"udi/internal/pmapping"
	"udi/internal/schema"
)

// Schema implements Algorithm 3. Two attributes share a cluster in the
// result T iff they share a cluster in every M_i of the p-med-schema.
// Attributes absent from some M_i are treated as singletons there (the
// pipeline always feeds schemas over the same attribute set, so this is
// only a safeguard).
func Schema(pmed *schema.PMedSchema) (*schema.MediatedSchema, error) {
	if pmed.Len() == 0 {
		return nil, fmt.Errorf("consolidate: empty p-med-schema")
	}
	// Signature of an attribute: the tuple of cluster identities across
	// all M_i. Equal signatures <=> always clustered together.
	names := map[string]bool{}
	for _, m := range pmed.Schemas {
		for _, n := range m.Names() {
			names[n] = true
		}
	}
	sig := make(map[string]string, len(names))
	for n := range names {
		parts := make([]string, 0, pmed.Len())
		for _, m := range pmed.Schemas {
			c := m.ClusterOf(n)
			if c == nil {
				parts = append(parts, "\x00"+n) // singleton placeholder
				continue
			}
			parts = append(parts, c.Key())
		}
		sig[n] = strings.Join(parts, "\x1d")
	}
	groups := map[string][]string{}
	for n, s := range sig {
		groups[s] = append(groups[s], n)
	}
	clusters := make([]schema.MediatedAttr, 0, len(groups))
	for _, g := range groups {
		clusters = append(clusters, schema.NewMediatedAttr(g...))
	}
	return schema.NewMediatedSchema(clusters)
}

// OneToMany is a single one-to-many schema mapping into the consolidated
// schema T: a source attribute maps to a set of T attributes (step 1 of
// the consolidation replaces (a, A) by every (a, B) with B ⊆ A).
type OneToMany struct {
	// SrcToMed maps a source attribute to the sorted indices of the T
	// attributes it corresponds to.
	SrcToMed map[string][]int
	Prob     float64
}

// key canonicalizes the mapping for step-3 merging.
func (m OneToMany) key() string {
	attrs := make([]string, 0, len(m.SrcToMed))
	for a := range m.SrcToMed {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	var b strings.Builder
	for _, a := range attrs {
		b.WriteString(a)
		b.WriteByte('=')
		for _, j := range m.SrcToMed[a] {
			fmt.Fprintf(&b, "%d,", j)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// MedToSrc inverts the mapping: each T attribute index corresponds to at
// most one source attribute (a T cluster refines exactly one M_i cluster,
// which maps one-to-one), so the inversion is well defined.
func (m OneToMany) MedToSrc() map[int]string {
	out := make(map[int]string)
	for a, idxs := range m.SrcToMed {
		for _, j := range idxs {
			out[j] = a
		}
	}
	return out
}

// PMapping is the consolidated probabilistic mapping between one source and
// the consolidated schema T.
type PMapping struct {
	SourceName string
	Target     *schema.MediatedSchema
	Mappings   []OneToMany
}

// ConsolidateMappings implements the three-step consolidation of §6 for
// one source: pms[i] is the p-mapping between the source and pmed.Schemas[i].
//
//  1. Rewrite each possible mapping of pms[i] into T-space: a correspondence
//     to mediated attribute A becomes correspondences to every T attribute
//     B ⊆ A.
//  2. Scale each mapping's probability by Pr(M_i).
//  3. Merge identical mappings, summing probabilities.
//
// maxMappings bounds the materialized product distribution per schema
// (p-mappings factor into groups; consolidation needs explicit mappings).
func ConsolidateMappings(pmed *schema.PMedSchema, target *schema.MediatedSchema, pms []*pmapping.PMapping, maxMappings int64) (*PMapping, error) {
	if len(pms) != pmed.Len() {
		return nil, fmt.Errorf("consolidate: %d p-mappings for %d schemas", len(pms), pmed.Len())
	}
	// Precompute, per schema M_i, the refinement: med index in M_i -> T
	// indices contained in it.
	refine := make([]map[int][]int, pmed.Len())
	for i, m := range pmed.Schemas {
		r := make(map[int][]int)
		for ti, tAttr := range target.Attrs {
			// Find the M_i cluster containing this T cluster (all its
			// names are together in every M_i by construction).
			c := m.ClusterOf(tAttr[0])
			if c == nil {
				continue
			}
			for mi, mAttr := range m.Attrs {
				if mAttr.Key() == c.Key() {
					r[mi] = append(r[mi], ti)
					break
				}
			}
		}
		for mi := range r {
			sort.Ints(r[mi])
		}
		refine[i] = r
	}

	merged := map[string]*OneToMany{}
	var order []string
	srcName := ""
	for i, pm := range pms {
		if pm == nil {
			return nil, fmt.Errorf("consolidate: nil p-mapping for schema %d", i)
		}
		srcName = pm.SourceName
		full, err := pm.FullMappings(maxMappings)
		if err != nil {
			return nil, fmt.Errorf("consolidate: source %q schema %d: %w", pm.SourceName, i, err)
		}
		for _, fm := range full {
			// Step 1: rewrite into T-space. fm.MedToSrc maps M_i index ->
			// source attribute.
			otm := OneToMany{SrcToMed: map[string][]int{}, Prob: fm.Prob * pmed.Probs[i]}
			for mi, src := range fm.MedToSrc {
				otm.SrcToMed[src] = append(otm.SrcToMed[src], refine[i][mi]...)
			}
			for a := range otm.SrcToMed {
				sort.Ints(otm.SrcToMed[a])
			}
			if otm.Prob == 0 {
				continue
			}
			// Step 3: merge identical mappings.
			k := otm.key()
			if ex, ok := merged[k]; ok {
				ex.Prob += otm.Prob
				continue
			}
			merged[k] = &otm
			order = append(order, k)
		}
	}
	sort.Strings(order)
	out := &PMapping{SourceName: srcName, Target: target}
	for _, k := range order {
		out.Mappings = append(out.Mappings, *merged[k])
	}
	return out, nil
}

// TotalProb returns the probability mass of the consolidated p-mapping;
// §6 notes it must sum to 1.
func (pm *PMapping) TotalProb() float64 {
	s := 0.0
	for _, m := range pm.Mappings {
		s += m.Prob
	}
	return s
}
